// Process-level fault injection for fleet worker subprocesses.
//
// The HTTP injector above models a flaky network; ProcConfig models a flaky
// *machine*: a worker killed mid-cell (OOM killer, preemption), a worker
// that wedges without exiting (deadlock, NFS stall), and a worker whose
// output lands corrupted (torn disk). The fleet coordinator must survive
// all three, and the chaos suite drives them deterministically: a Plan is a
// pure function of (seed, cell ID), so the same chaos seed yields the same
// kills against the same cells and therefore the same recovery history.
//
// Everything here is config-gated and uses its own seeded streams: no
// pre-existing Injector stream is consumed, so every legacy golden output
// stays byte-identical.
package faults

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/ethpbs/pbslab/internal/rng"
)

// ProcConfig declares the process-level faults one worker attempt injects
// against itself. The zero value injects nothing.
type ProcConfig struct {
	// KillAfterSlots exits the process with a kill-style status after N
	// simulated slots (0 = never): the mid-cell crash case.
	KillAfterSlots int
	// WedgeAfterSlots stops heartbeating and blocks the simulation forever
	// after N slots without exiting (0 = never): the hung-worker case that
	// only a lease deadline can detect.
	WedgeAfterSlots int
	// CorruptOutput flips bytes in one finished artifact after a successful
	// run, so the cell completes with output only a manifest check catches.
	CorruptOutput bool
	// SlowMSPerSlot sleeps N milliseconds at every slot boundary while still
	// heartbeating (0 = full speed): the straggler case — a worker that is
	// alive and correct but much slower than its peers, detectable only by
	// relative progress, never by a lease deadline.
	SlowMSPerSlot int
	// MaxAttempt gates every fault to attempts <= MaxAttempt (0 means 1),
	// so a retried cell can succeed and the run converges instead of
	// quarantining everything.
	MaxAttempt int
}

// Active reports whether the config injects anything at the given attempt.
func (c ProcConfig) Active(attempt int) bool {
	max := c.MaxAttempt
	if max <= 0 {
		max = 1
	}
	if attempt > max {
		return false
	}
	return c.KillAfterSlots > 0 || c.WedgeAfterSlots > 0 || c.CorruptOutput || c.SlowMSPerSlot > 0
}

// String encodes the config in the ParseProc syntax ("" for the zero
// config); the coordinator ships it to workers through an env var.
func (c ProcConfig) String() string {
	var parts []string
	if c.KillAfterSlots > 0 {
		parts = append(parts, fmt.Sprintf("kill-after-slots=%d", c.KillAfterSlots))
	}
	if c.WedgeAfterSlots > 0 {
		parts = append(parts, fmt.Sprintf("wedge-after-slots=%d", c.WedgeAfterSlots))
	}
	if c.CorruptOutput {
		parts = append(parts, "corrupt-output=1")
	}
	if c.SlowMSPerSlot > 0 {
		parts = append(parts, fmt.Sprintf("slow-ms-per-slot=%d", c.SlowMSPerSlot))
	}
	if c.MaxAttempt > 0 {
		parts = append(parts, fmt.Sprintf("max-attempt=%d", c.MaxAttempt))
	}
	return strings.Join(parts, ",")
}

// ParseProc decodes a ProcConfig from its String form. "" is the zero
// config.
func ParseProc(s string) (ProcConfig, error) {
	var c ProcConfig
	s = strings.TrimSpace(s)
	if s == "" {
		return c, nil
	}
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		key, val, ok := strings.Cut(entry, "=")
		if !ok {
			return c, fmt.Errorf("faults: proc config %q: want key=value", entry)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return c, fmt.Errorf("faults: proc config %q: want a non-negative integer", entry)
		}
		switch key {
		case "kill-after-slots":
			c.KillAfterSlots = n
		case "wedge-after-slots":
			c.WedgeAfterSlots = n
		case "corrupt-output":
			c.CorruptOutput = n != 0
		case "slow-ms-per-slot":
			c.SlowMSPerSlot = n
		case "max-attempt":
			c.MaxAttempt = n
		default:
			return c, fmt.Errorf("faults: proc config %q: unknown key", entry)
		}
	}
	return c, nil
}

// ProcEnv is the environment variable carrying a worker's ProcConfig.
const ProcEnv = "PBSFLEET_FAULT"

// ProcFromEnv reads the worker-side config from ProcEnv ("" when unset).
func ProcFromEnv() (ProcConfig, error) {
	return ParseProc(os.Getenv(ProcEnv))
}

// ProcPlan draws the chaos-mode fault mix for one cell from a dedicated
// seeded stream. Decisions depend only on (seed, cell), never on scheduling
// order, so a chaos run's fault history is reproducible. Roughly a third of
// cells get a kill, a sixth a wedge, a sixth corrupt output; every fault is
// limited to the first attempt so the run always converges.
func ProcPlan(seed uint64, cell string, slots int) ProcConfig {
	r := rng.New(seed).Fork("proc/" + cell)
	var c ProcConfig
	if slots < 2 {
		slots = 2
	}
	switch r.Intn(6) {
	case 0, 1:
		c.KillAfterSlots = 1 + r.Intn(slots-1)
	case 2:
		c.WedgeAfterSlots = 1 + r.Intn(slots-1)
	case 3:
		c.CorruptOutput = true
	}
	c.MaxAttempt = 1
	return c
}
