package faults

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ethpbs/pbslab/internal/rng"
)

// ErrInjectedFill is the error CacheChaos injects into failed cache fills.
// Tests assert on it with errors.Is to distinguish injected failures from
// organic ones.
var ErrInjectedFill = errors.New("faults: injected cache fill failure")

// CacheConfig declares the fault mix for a serving-plane response cache.
// Probabilities are drawn independently per fill; zero values inject
// nothing.
type CacheConfig struct {
	// SlowFillProb is the chance a fill is held for SlowFillDelay before
	// computing — widening the singleflight window so herds actually pile
	// onto an in-flight fill instead of racing past it.
	SlowFillProb  float64
	SlowFillDelay time.Duration
	// FailFillProb is the chance a fill fails outright with
	// ErrInjectedFill: nothing may be cached, every waiter must see the
	// error, and the next request must retry from scratch.
	FailFillProb float64
}

// CacheCounters tallies injected cache-fill faults.
type CacheCounters struct {
	Fills     uint64 `json:"fills"`
	SlowFills uint64 `json:"slow_fills"`
	FailFills uint64 `json:"fail_fills"`
}

// CacheChaos injects faults into a response cache's fill path. Its Hook
// method matches serve's FillHook signature (func(route string) error)
// without importing serve, so the dependency points the same way as the
// rest of the chaos suite: serve takes the hook as plain data.
//
// Decisions come from a seeded stream forked per chaos instance; like the
// relay Injector, the decision sequence is a pure function of (seed,
// ordinal). Fills triggered by concurrent requests race for ordinals, so
// chaos tests assert on counters and invariants, not on which specific
// fill failed.
type CacheChaos struct {
	mu  sync.Mutex
	r   *rng.RNG
	cfg CacheConfig

	fills     atomic.Uint64
	slowFills atomic.Uint64
	failFills atomic.Uint64
}

// NewCacheChaos seeds a cache-fill fault injector.
func NewCacheChaos(seed uint64, cfg CacheConfig) *CacheChaos {
	return &CacheChaos{r: rng.New(seed).Fork("faults/cache"), cfg: cfg}
}

// Hook is the fill interceptor: pass it to serve.Config.CacheFillHook.
// route identifies the entry being filled; the draw order (slow, then
// fail) is fixed so the stream advances identically whatever the outcome.
func (cc *CacheChaos) Hook(route string) error {
	cc.fills.Add(1)
	cc.mu.Lock()
	slow := cc.r.Bool(cc.cfg.SlowFillProb)
	fail := cc.r.Bool(cc.cfg.FailFillProb)
	cc.mu.Unlock()
	if slow && cc.cfg.SlowFillDelay > 0 {
		cc.slowFills.Add(1)
		time.Sleep(cc.cfg.SlowFillDelay)
	}
	if fail {
		cc.failFills.Add(1)
		return ErrInjectedFill
	}
	return nil
}

// Counters snapshots the injection tallies.
func (cc *CacheChaos) Counters() CacheCounters {
	return CacheCounters{
		Fills:     cc.fills.Load(),
		SlowFills: cc.slowFills.Load(),
		FailFills: cc.failFills.Load(),
	}
}
