package faults

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/ethpbs/pbslab/internal/rng"
)

// Window is a half-open [From, To) outage span.
type Window struct{ From, To time.Time }

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Time) bool {
	return !t.Before(w.From) && t.Before(w.To)
}

// Config declares the fault mix for one relay. Probabilities are drawn
// independently per request; zero values inject nothing.
type Config struct {
	// DropProb is the chance the connection is severed before any response.
	DropProb float64
	// DelayProb is the chance the response is held for Delay.
	DelayProb float64
	Delay     time.Duration
	// ErrorProb is the chance of a 503 instead of a real response.
	ErrorProb float64
	// RateLimitProb is the chance of a 429 carrying Retry-After.
	RateLimitProb float64
	RetryAfter    time.Duration
	// TruncateProb is the chance the response body is cut in half
	// mid-stream.
	TruncateProb float64
	// DuplicateProb is the chance the request is delivered twice: the
	// round-trip is performed, its response discarded, and the request
	// re-sent — the at-least-once delivery failure that flushes out
	// non-idempotent endpoints. Drawn only when configured (like the
	// server-plane modes), so legacy configs keep their exact streams.
	// Transport-only; Middleware ignores it (a server cannot re-deliver).
	DuplicateProb float64

	// The two WAN modes below model long flaky transfers between real
	// hosts. Like the server-plane modes they are drawn only when
	// configured, so legacy configs keep their exact streams. They are
	// Transport-only: both model damage on the client's side of the wire.

	// CutProb is the chance the connection is severed mid-transfer: the
	// response streams normally up to a seeded byte offset drawn in
	// [1, CutAfterBytes] (default 64 KiB) and then dies with a read error —
	// the failure ranged resume exists for. A cut link differs from
	// TruncateProb in that the client observes an explicit error partway
	// through a known-length body, not a silently short one.
	CutProb       float64
	CutAfterBytes int64
	// ThrottleProb is the chance the response body is drip-fed at
	// ThrottleChunk bytes (default 1 KiB) per read with ThrottleDelay
	// between chunks — a congested WAN path that makes big single-shot
	// transfers time out where chunked ranged transfers survive.
	ThrottleProb  float64
	ThrottleChunk int
	ThrottleDelay time.Duration

	// The three server-plane modes below are drawn only when at least one
	// of them is configured, so legacy configs keep their exact historical
	// draw sequences (and their golden outputs). They only take effect in
	// Middleware; Transport ignores them.

	// SlowBodyProb is the chance the request body is drip-fed to the
	// handler — a seeded slow-loris client. The handler sees SlowBodyChunk
	// bytes (default 1) per read with SlowBodyDelay between chunks, so a
	// body-reading endpoint without its own deadline stalls indefinitely.
	SlowBodyProb  float64
	SlowBodyChunk int
	SlowBodyDelay time.Duration
	// PartialWriteProb is the chance only the first half of the response
	// body is written, with framing that terminates cleanly: no transport
	// error, just silently short payload bytes — exactly the damage only a
	// content checksum (the artifact manifest) can catch.
	PartialWriteProb float64
	// ResetProb is the chance the connection is torn down after half the
	// response body is on the wire; the client observes a mid-response
	// reset/EOF rather than a status.
	ResetProb float64

	// Outages are hard downtime windows: every request inside one is
	// dropped, regardless of the probabilistic faults.
	Outages []Window
}

// hasServerModes reports whether any Middleware-only fault is configured.
func (c Config) hasServerModes() bool {
	return c.SlowBodyProb > 0 || c.PartialWriteProb > 0 || c.ResetProb > 0
}

// Counters tallies injected faults for one relay.
type Counters struct {
	Requests      int
	Drops         int
	Delays        int
	Errors        int
	RateLimits    int
	Truncates     int
	Duplicates    int
	OutageHits    int
	SlowBodies    int
	PartialWrites int
	Resets        int
	Cuts          int
	Throttles     int
}

// Injected sums every injected fault.
func (c Counters) Injected() int {
	return c.Drops + c.Delays + c.Errors + c.RateLimits + c.Truncates + c.Duplicates +
		c.OutageHits + c.SlowBodies + c.PartialWrites + c.Resets + c.Cuts + c.Throttles
}

// Stats aggregates fault counters per relay; safe for concurrent use.
type Stats struct {
	mu     sync.Mutex
	counts map[string]*Counters
}

func (s *Stats) bump(relay string, f func(*Counters)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.counts == nil {
		s.counts = map[string]*Counters{}
	}
	c := s.counts[relay]
	if c == nil {
		c = &Counters{}
		s.counts[relay] = c
	}
	f(c)
}

// For returns a copy of the counters for one relay.
func (s *Stats) For(relay string) Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.counts[relay]; ok {
		return *c
	}
	return Counters{}
}

// Relays lists every relay with recorded counters, sorted.
func (s *Stats) Relays() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.counts))
	for name := range s.counts {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Action is one request's fault decision. The zero Action passes the
// request through untouched.
type Action struct {
	Drop       bool
	Delay      time.Duration
	Status     int // 0 = no synthetic status; otherwise 503 or 429
	RetryAfter time.Duration
	Truncate   bool
	Duplicate  bool

	// Transport-only WAN modes (Middleware never sets them).
	CutAfter      int64 // > 0: sever the response body after this many bytes
	Throttle      bool
	ThrottleChunk int
	ThrottleDelay time.Duration

	// Middleware-only modes (Transport never sets them).
	SlowBody      bool
	SlowBodyChunk int
	SlowBodyDelay time.Duration
	PartialWrite  bool
	Reset         bool
}

// Injector makes deterministic per-relay fault decisions. Each relay gets
// its own forked rng stream, so one relay's request count never perturbs
// another's draws; within a relay, decisions depend only on the request
// ordinal. Concurrent crawls stay deterministic as long as each relay's
// requests are issued sequentially (one crawler goroutine per relay).
type Injector struct {
	mu      sync.Mutex
	root    *rng.RNG
	streams map[string]*rng.RNG
	configs map[string]Config
	stats   Stats
}

// NewInjector seeds an injector.
func NewInjector(seed uint64) *Injector {
	return &Injector{
		root:    rng.New(seed),
		streams: map[string]*rng.RNG{},
		configs: map[string]Config{},
	}
}

// SetConfig declares the fault mix for a relay. Relays without a config
// pass through untouched.
func (inj *Injector) SetConfig(relay string, cfg Config) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.configs[relay] = cfg
}

// Stats exposes the injection counters.
func (inj *Injector) Stats() *Stats { return &inj.stats }

// Decide draws the fault action for one request against relay at the given
// time. Every configured fault kind consumes exactly one draw per request,
// so the decision sequence is a pure function of (seed, relay, ordinal).
func (inj *Injector) Decide(relay string, at time.Time) Action {
	inj.mu.Lock()
	cfg, configured := inj.configs[relay]
	var stream *rng.RNG
	if configured {
		stream = inj.streams[relay]
		if stream == nil {
			stream = inj.root.Fork("faults/" + relay)
			inj.streams[relay] = stream
		}
	}
	inj.mu.Unlock()

	inj.stats.bump(relay, func(c *Counters) { c.Requests++ })
	if !configured {
		return Action{}
	}

	for _, w := range cfg.Outages {
		if w.Contains(at) {
			inj.stats.bump(relay, func(c *Counters) { c.OutageHits++ })
			return Action{Drop: true}
		}
	}

	// Fixed draw order, one draw per kind, so the stream advances
	// identically whatever the outcome. The server-plane kinds draw only
	// when configured, which keeps every pre-existing config's stream —
	// and therefore its goldens — byte-identical.
	inj.mu.Lock()
	drop := stream.Bool(cfg.DropProb)
	delay := stream.Bool(cfg.DelayProb)
	fail := stream.Bool(cfg.ErrorProb)
	limit := stream.Bool(cfg.RateLimitProb)
	trunc := stream.Bool(cfg.TruncateProb)
	var slow, partial, reset bool
	if cfg.hasServerModes() {
		slow = stream.Bool(cfg.SlowBodyProb)
		partial = stream.Bool(cfg.PartialWriteProb)
		reset = stream.Bool(cfg.ResetProb)
	}
	var dup bool
	if cfg.DuplicateProb > 0 {
		dup = stream.Bool(cfg.DuplicateProb)
	}
	var cutAt int64
	if cfg.CutProb > 0 {
		cut := stream.Bool(cfg.CutProb)
		maxOff := cfg.CutAfterBytes
		if maxOff <= 0 {
			maxOff = 64 << 10
		}
		// The offset is drawn every request (not just when the cut fires),
		// so the stream advances identically whatever the outcome.
		off := int64(stream.Intn(int(maxOff))) + 1
		if cut {
			cutAt = off
		}
	}
	var throttle bool
	if cfg.ThrottleProb > 0 {
		throttle = stream.Bool(cfg.ThrottleProb)
	}
	inj.mu.Unlock()

	switch {
	case drop:
		inj.stats.bump(relay, func(c *Counters) { c.Drops++ })
		return Action{Drop: true}
	case fail:
		inj.stats.bump(relay, func(c *Counters) { c.Errors++ })
		return Action{Status: http.StatusServiceUnavailable}
	case limit:
		inj.stats.bump(relay, func(c *Counters) { c.RateLimits++ })
		return Action{Status: http.StatusTooManyRequests, RetryAfter: cfg.RetryAfter}
	}
	var act Action
	if delay {
		inj.stats.bump(relay, func(c *Counters) { c.Delays++ })
		act.Delay = cfg.Delay
	}
	if trunc {
		inj.stats.bump(relay, func(c *Counters) { c.Truncates++ })
		act.Truncate = true
	}
	if dup {
		inj.stats.bump(relay, func(c *Counters) { c.Duplicates++ })
		act.Duplicate = true
	}
	// A full truncation subsumes a cut: only one of the two mangles the
	// body, and truncation (read-all-then-halve) would defeat the cut's
	// streaming offset anyway.
	if cutAt > 0 && !act.Truncate {
		inj.stats.bump(relay, func(c *Counters) { c.Cuts++ })
		act.CutAfter = cutAt
	}
	if throttle {
		inj.stats.bump(relay, func(c *Counters) { c.Throttles++ })
		act.Throttle = true
		act.ThrottleChunk = cfg.ThrottleChunk
		if act.ThrottleChunk <= 0 {
			act.ThrottleChunk = 1 << 10
		}
		act.ThrottleDelay = cfg.ThrottleDelay
	}
	if slow {
		inj.stats.bump(relay, func(c *Counters) { c.SlowBodies++ })
		act.SlowBody = true
		act.SlowBodyChunk = cfg.SlowBodyChunk
		if act.SlowBodyChunk <= 0 {
			act.SlowBodyChunk = 1
		}
		act.SlowBodyDelay = cfg.SlowBodyDelay
	}
	// Reset wins over partial-write when both fire: a torn connection
	// subsumes a short body.
	switch {
	case reset:
		inj.stats.bump(relay, func(c *Counters) { c.Resets++ })
		act.Reset = true
	case partial:
		inj.stats.bump(relay, func(c *Counters) { c.PartialWrites++ })
		act.PartialWrite = true
	}
	return act
}

// Transport wraps an http.RoundTripper with fault injection on the client
// side. Dropped requests never reach Base; synthetic statuses are answered
// locally; truncation halves the real response body.
type Transport struct {
	Base  http.RoundTripper
	Inj   *Injector
	Relay string
	// Clock supplies now for outage windows; defaults to time.Now.
	Clock func() time.Time
	// Sleep implements injected delays; defaults to time.Sleep.
	Sleep func(time.Duration)
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	now := time.Now
	if t.Clock != nil {
		now = t.Clock
	}
	act := t.Inj.Decide(t.Relay, now())
	if act.Drop {
		return nil, fmt.Errorf("faults: %s: connection dropped", t.Relay)
	}
	if act.Delay > 0 {
		sleep := time.Sleep
		if t.Sleep != nil {
			sleep = t.Sleep
		}
		sleep(act.Delay)
	}
	if act.Status != 0 {
		return syntheticResponse(req, act), nil
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if act.Duplicate {
		// At-least-once delivery: the request reaches the server twice and
		// the caller sees only the second response. Requests with a
		// non-replayable body cannot be duplicated and pass through.
		if redo, rerr := duplicateRequest(req); rerr == nil {
			first, ferr := base.RoundTrip(req)
			if ferr != nil {
				// The lone delivery failed; nothing left to duplicate.
				return first, ferr
			}
			_, _ = io.Copy(io.Discard, first.Body)
			first.Body.Close()
			req = redo
		}
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	if act.Truncate {
		body, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if readErr != nil {
			return nil, readErr
		}
		resp.Body = io.NopCloser(bytes.NewReader(body[:len(body)/2]))
		return resp, nil
	}
	// WAN damage wraps the streaming body: a cut severs it at the seeded
	// offset, a throttle drips it. Both compose (a slow link can also die).
	if act.CutAfter > 0 {
		resp.Body = &cutReader{src: resp.Body, relay: t.Relay, left: act.CutAfter}
	}
	if act.Throttle {
		resp.Body = &dripReader{
			src:   resp.Body,
			chunk: act.ThrottleChunk,
			delay: act.ThrottleDelay,
			done:  req.Context().Done(),
		}
	}
	return resp, nil
}

// cutReader delivers the first left bytes of src, then fails the read —
// the client-side view of a connection severed mid-transfer.
type cutReader struct {
	src   io.ReadCloser
	relay string
	left  int64
}

func (c *cutReader) Read(p []byte) (int, error) {
	if c.left <= 0 {
		return 0, fmt.Errorf("faults: %s: connection cut mid-transfer", c.relay)
	}
	if int64(len(p)) > c.left {
		p = p[:c.left]
	}
	n, err := c.src.Read(p)
	c.left -= int64(n)
	if err == io.EOF {
		// The body ended before the cut offset: the transfer completed.
		return n, err
	}
	if c.left <= 0 && err == nil {
		err = fmt.Errorf("faults: %s: connection cut mid-transfer", c.relay)
	}
	return n, err
}

func (c *cutReader) Close() error { return c.src.Close() }

// duplicateRequest clones req for a second delivery, replaying the body via
// GetBody. Bodyless requests clone trivially; a request whose body cannot be
// replayed returns an error and is not duplicated.
func duplicateRequest(req *http.Request) (*http.Request, error) {
	redo := req.Clone(req.Context())
	if req.Body == nil || req.Body == http.NoBody {
		return redo, nil
	}
	if req.GetBody == nil {
		return nil, fmt.Errorf("faults: %s request body is not replayable", req.Method)
	}
	body, err := req.GetBody()
	if err != nil {
		return nil, err
	}
	redo.Body = body
	return redo, nil
}

func syntheticResponse(req *http.Request, act Action) *http.Response {
	header := http.Header{}
	if act.RetryAfter > 0 {
		header.Set("Retry-After", strconv.Itoa(int(act.RetryAfter/time.Second)))
	}
	return &http.Response{
		StatusCode: act.Status,
		Status:     http.StatusText(act.Status),
		Header:     header,
		Body:       io.NopCloser(bytes.NewReader(nil)),
		Request:    req,
	}
}

// Middleware wraps a relay's handler with server-side fault injection.
// Drops abort the connection (the client sees EOF); truncation declares the
// full Content-Length but writes only half the body, which the client
// observes as an unexpected EOF mid-decode. SlowBody drips the request body
// into the handler like a slow-loris client; PartialWrite delivers only the
// first half of the response with clean framing (detectable only by
// checksum); Reset tears the connection down after half the response.
func Middleware(next http.Handler, inj *Injector, relay string, clock func() time.Time) http.Handler {
	if clock == nil {
		clock = time.Now
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		act := inj.Decide(relay, clock())
		if act.Drop {
			panic(http.ErrAbortHandler)
		}
		if act.Delay > 0 {
			time.Sleep(act.Delay)
		}
		if act.Status != 0 {
			if act.RetryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(int(act.RetryAfter/time.Second)))
			}
			http.Error(w, http.StatusText(act.Status), act.Status)
			return
		}
		if act.SlowBody && r.Body != nil {
			r.Body = &dripReader{
				src:   r.Body,
				chunk: act.SlowBodyChunk,
				delay: act.SlowBodyDelay,
				done:  r.Context().Done(),
			}
		}
		if !act.Truncate && !act.PartialWrite && !act.Reset {
			next.ServeHTTP(w, r)
			return
		}
		rec := &captureWriter{header: http.Header{}, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		for k, vs := range rec.header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		half := rec.buf.Bytes()[:rec.buf.Len()/2]
		switch {
		case act.Truncate:
			// Promise the full length, deliver half: unexpected EOF.
			w.Header().Set("Content-Length", strconv.Itoa(rec.buf.Len()))
			w.WriteHeader(rec.code)
			_, _ = w.Write(half)
		case act.Reset:
			// Half the body on the wire, then a torn connection.
			w.WriteHeader(rec.code)
			_, _ = w.Write(half)
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		default: // PartialWrite
			// Half the body with honest framing: the transfer ends
			// cleanly and only a content checksum can tell.
			w.Header().Del("Content-Length")
			w.WriteHeader(rec.code)
			_, _ = w.Write(half)
		}
	})
}

// dripReader delivers the wrapped body chunk bytes at a time with a delay
// before each chunk, aborting early when the request context ends so an
// injected stall cannot outlive its request.
type dripReader struct {
	src   io.ReadCloser
	chunk int
	delay time.Duration
	done  <-chan struct{}
}

func (d *dripReader) Read(p []byte) (int, error) {
	if d.delay > 0 {
		select {
		case <-time.After(d.delay):
		case <-d.done:
			return 0, fmt.Errorf("faults: slow-loris drip aborted: request context done")
		}
	}
	if len(p) > d.chunk {
		p = p[:d.chunk]
	}
	return d.src.Read(p)
}

func (d *dripReader) Close() error { return d.src.Close() }

// captureWriter buffers a handler's full response so Middleware can replay
// a truncated copy.
type captureWriter struct {
	header http.Header
	code   int
	buf    bytes.Buffer
}

func (c *captureWriter) Header() http.Header { return c.header }

func (c *captureWriter) WriteHeader(code int) { c.code = code }

func (c *captureWriter) Write(p []byte) (int, error) { return c.buf.Write(p) }
