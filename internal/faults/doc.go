// Package faults injects deterministic failures into pbslab's I/O planes.
//
// The paper's "realities" half is a catalogue of relay failures: the
// 2022-11-10 bad-timestamp incident, data APIs that stall or vanish
// mid-crawl, and relays that promise what they never deliver. This package
// makes those failure modes first-class and reproducible: an Injector draws
// per-relay fault decisions from a seeded rng stream, so the same seed
// yields the same sequence of drops, delays, errors and truncations — and
// therefore the same retry counters and the same final harvest.
//
// The injector plugs in at either end of a connection: Transport wraps an
// http.RoundTripper on the client side, Middleware wraps a relay's
// http.Handler on the server side. Both consult the same Decide method, so
// tests and demos can pick whichever end is convenient.
//
// Beyond the relay plane, CorruptDir applies seeded filesystem corruption
// (truncation, bit flips, deletion, stale debris) to artifact directories
// for the verifier's chaos tests, and the proc helpers kill, wedge, and
// sabotage worker subprocesses for the fleet's process-level chaos suite.
// CacheChaos does the same for the serving plane's response cache: a
// seeded hook slows or fails cache fills so the soak suite can prove
// that failed or abandoned fills never poison a key.
package faults
