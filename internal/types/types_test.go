package types

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/u256"
)

func addr(s string) Address { return crypto.AddressFromSeed(s) }

func TestUnitConversions(t *testing.T) {
	if got := Gwei(1); got != u256.New(1_000_000_000) {
		t.Errorf("Gwei(1) = %s", got)
	}
	if got := Ether(1); got != OneEther {
		t.Errorf("Ether(1) = %s", got)
	}
	if got := ToEther(Ether(2.5)); got != 2.5 {
		t.Errorf("ToEther(Ether(2.5)) = %g", got)
	}
	if got := ToEther(Ether(0.0004)); got != 0.0004 {
		t.Errorf("small amount: %g", got)
	}
	if got := ToGwei(Gwei(17)); got != 17 {
		t.Errorf("ToGwei = %g", got)
	}
	if !Ether(-1).IsZero() {
		t.Error("negative ether should clamp to zero")
	}
}

func TestEtherRoundTripQuick(t *testing.T) {
	// Exact below 2^53 wei-gwei boundaries is too strict for float64; the
	// analysis needs ~nano-ETH relative accuracy, so that is the property.
	f := func(milli uint32) bool {
		eth := float64(milli) / 1000.0
		back := ToEther(Ether(eth))
		if eth == 0 {
			return back == 0
		}
		rel := (back - eth) / eth
		return rel < 1e-9 && rel > -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func newTestTx(nonce uint64, tip uint64) *Transaction {
	return NewTransaction(nonce, addr("alice"), addr("bob"),
		Ether(1), 21_000, Gwei(100), Gwei(tip), nil)
}

func TestTransactionHashStable(t *testing.T) {
	a := newTestTx(1, 2)
	b := newTestTx(1, 2)
	if a.Hash() != b.Hash() {
		t.Error("equal transactions hashed differently")
	}
	c := newTestTx(2, 2)
	if a.Hash() == c.Hash() {
		t.Error("different nonces produced equal hashes")
	}
	d := newTestTx(1, 3)
	if a.Hash() == d.Hash() {
		t.Error("different tips produced equal hashes")
	}
}

func TestEffectiveGasPrice(t *testing.T) {
	tx := NewTransaction(0, addr("a"), addr("b"), u256.Zero, 21_000,
		Gwei(50), Gwei(2), nil)

	// Normal case: baseFee + tip below max fee.
	price, ok := tx.EffectiveGasPrice(Gwei(10))
	if !ok || price != Gwei(12) {
		t.Errorf("price = %s ok=%v, want 12 gwei", price, ok)
	}
	tip, ok := tx.EffectiveTip(Gwei(10))
	if !ok || tip != Gwei(2) {
		t.Errorf("tip = %s ok=%v, want 2 gwei", tip, ok)
	}

	// Capped case: baseFee + tip above max fee.
	price, ok = tx.EffectiveGasPrice(Gwei(49))
	if !ok || price != Gwei(50) {
		t.Errorf("capped price = %s ok=%v, want 50 gwei", price, ok)
	}
	tip, ok = tx.EffectiveTip(Gwei(49))
	if !ok || tip != Gwei(1) {
		t.Errorf("capped tip = %s, want 1 gwei", tip)
	}

	// Unincludable: baseFee above max fee.
	if _, ok = tx.EffectiveGasPrice(Gwei(51)); ok {
		t.Error("transaction includable above its max fee")
	}
	if _, ok = tx.EffectiveTip(Gwei(51)); ok {
		t.Error("tip computed above max fee")
	}
}

func TestEffectiveTipNeverNegative(t *testing.T) {
	f := func(maxFeeG, maxTipG, baseG uint32) bool {
		tx := NewTransaction(0, addr("a"), addr("b"), u256.Zero, 21_000,
			Gwei(uint64(maxFeeG)), Gwei(uint64(maxTipG)), nil)
		base := Gwei(uint64(baseG))
		tip, ok := tx.EffectiveTip(base)
		if !ok {
			return Gwei(uint64(maxFeeG)).Lt(base)
		}
		price := base.Add(tip)
		return !price.Gt(tx.MaxFee) && !tip.Gt(tx.MaxTip)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeaderSealHash(t *testing.T) {
	h := &Header{
		Number: 15_537_394, Slot: 4_700_013, Timestamp: 1_663_224_179,
		FeeRecipient: addr("builder"), GasLimit: 30_000_000, GasUsed: 15_000_000,
		BaseFee: Gwei(12),
	}
	h1 := h.SealHash()
	h.GasUsed++
	if h.SealHash() == h1 {
		t.Error("changing GasUsed did not change seal hash")
	}
}

func TestBlockAssembly(t *testing.T) {
	txs := []*Transaction{newTestTx(0, 1), newTestTx(1, 2)}
	header := &Header{Number: 100, FeeRecipient: addr("b"), BaseFee: Gwei(10)}
	blk := NewBlock(header, txs)
	if blk.Header.TxRoot.IsZero() {
		t.Error("TxRoot not set")
	}
	if blk.Hash() != header.SealHash() {
		t.Error("block hash != header seal hash")
	}
	if blk.Number() != 100 {
		t.Errorf("Number = %d", blk.Number())
	}

	// Reordering transactions must change the root.
	header2 := &Header{Number: 100, FeeRecipient: addr("b"), BaseFee: Gwei(10)}
	blk2 := NewBlock(header2, []*Transaction{txs[1], txs[0]})
	if blk.Header.TxRoot == blk2.Header.TxRoot {
		t.Error("reordered transactions share a TxRoot")
	}
}

func TestBundle(t *testing.T) {
	b := &Bundle{
		Txs:      []*Transaction{newTestTx(0, 5), newTestTx(1, 5)},
		Searcher: addr("searcher"),
	}
	if b.GasLimit() != 42_000 {
		t.Errorf("GasLimit = %d", b.GasLimit())
	}
	h := b.Hash()
	b2 := &Bundle{Txs: b.Txs, Searcher: addr("other")}
	if b2.Hash() == h {
		t.Error("bundles from different searchers share a hash")
	}
}

func TestBundleHashOrderSensitive(t *testing.T) {
	t1, t2 := newTestTx(0, 1), newTestTx(1, 1)
	a := &Bundle{Txs: []*Transaction{t1, t2}, Searcher: addr("s")}
	b := &Bundle{Txs: []*Transaction{t2, t1}, Searcher: addr("s")}
	if a.Hash() == b.Hash() {
		t.Error("bundle hash ignores transaction order")
	}
}

func TestComputeTxRootEmpty(t *testing.T) {
	if ComputeTxRoot(nil).IsZero() {
		t.Error("empty tx root should still be a defined digest")
	}
}

func TestReceiptSucceeded(t *testing.T) {
	r := &Receipt{Status: 1}
	if !r.Succeeded() {
		t.Error("status 1 should succeed")
	}
	r.Status = 0
	if r.Succeeded() {
		t.Error("status 0 should not succeed")
	}
}

func TestTxHashUniqueQuick(t *testing.T) {
	seen := map[Hash]bool{}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		tx := NewTransaction(r.Uint64(), addr("a"), addr("b"),
			u256.New(r.Uint64()), 21_000, Gwei(100), Gwei(1), nil)
		if seen[tx.Hash()] {
			t.Fatal("hash collision across distinct transactions")
		}
		seen[tx.Hash()] = true
	}
}
