// Package types defines the execution-layer domain objects shared by every
// subsystem: amounts, transactions, headers, blocks, receipts, logs,
// internal-transfer traces and searcher bundles.
//
// Identity (hashes) is always derived from canonical RLP encodings so that
// two structurally equal objects hash equally regardless of how they were
// produced.
package types

import (
	"fmt"
	"math"

	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/rlp"
	"github.com/ethpbs/pbslab/internal/u256"
)

// Re-exported identity types. The rest of the repository imports types and
// never reaches into crypto for these.
type (
	// Address is an execution-layer account address.
	Address = crypto.Address
	// Hash is a 256-bit digest.
	Hash = crypto.Hash
	// PubKey is a consensus-layer public key.
	PubKey = crypto.PubKey
	// Signature is a consensus-layer signature.
	Signature = crypto.Signature
)

// Wei is an amount of ether denominated in wei (10^-18 ETH).
type Wei = u256.Int

// Unit constants.
var (
	// OneGwei is 10^9 wei.
	OneGwei = u256.New(1_000_000_000)
	// OneEther is 10^18 wei.
	OneEther = u256.New(1_000_000_000_000_000_000)
)

// Gwei returns n gwei as a Wei amount.
func Gwei(n uint64) Wei {
	return u256.New(n).Mul(OneGwei)
}

// Ether returns a float ETH amount as Wei, truncated to wei precision.
// It handles the amounts that occur in the simulation (well under 10^13 ETH)
// without overflow.
func Ether(eth float64) Wei {
	if eth <= 0 || math.IsNaN(eth) || math.IsInf(eth, 0) {
		return u256.Zero
	}
	// Split into integer ETH and fractional gwei to preserve precision for
	// small amounts (e.g. 0.0004 ETH builder margins).
	whole := math.Floor(eth)
	frac := eth - whole
	w := u256.New(uint64(whole)).Mul(OneEther)
	fracGwei := uint64(math.Round(frac * 1e9))
	return w.Add(u256.New(fracGwei).Mul(OneGwei))
}

// ToEther converts a Wei amount to float64 ETH for analysis output.
func ToEther(w Wei) float64 {
	return w.Float64() / 1e18
}

// ToGwei converts a Wei amount to float64 gwei.
func ToGwei(w Wei) float64 {
	return w.Float64() / 1e9
}

// Transaction is an EIP-1559 (type-2) transaction. The simulation does not
// carry ECDSA signatures; From is authoritative (see crypto package note on
// substituted primitives).
type Transaction struct {
	Nonce  uint64
	From   Address
	To     Address
	Value  Wei
	Gas    uint64 // gas limit
	MaxFee Wei    // max fee per gas
	MaxTip Wei    // max priority fee per gas
	Data   []byte // calldata, interpreted by internal/evm

	hash Hash // computed once at construction
}

// NewTransaction builds a transaction and computes its hash. All
// transactions must be created through this constructor (or SetHashed after
// mutation in tests) so the cached hash is always valid.
func NewTransaction(nonce uint64, from, to Address, value Wei, gas uint64, maxFee, maxTip Wei, data []byte) *Transaction {
	tx := &Transaction{
		Nonce: nonce, From: from, To: to, Value: value,
		Gas: gas, MaxFee: maxFee, MaxTip: maxTip, Data: data,
	}
	tx.hash = tx.computeHash()
	return tx
}

func (tx *Transaction) computeHash() Hash {
	v := tx.Value.Bytes32()
	mf := tx.MaxFee.Bytes32()
	mt := tx.MaxTip.Bytes32()
	enc := rlp.Encode(rlp.List(
		rlp.Uint(tx.Nonce),
		rlp.String(tx.From[:]),
		rlp.String(tx.To[:]),
		rlp.String(v[:]),
		rlp.Uint(tx.Gas),
		rlp.String(mf[:]),
		rlp.String(mt[:]),
		rlp.String(tx.Data),
	))
	return crypto.Keccak256(enc)
}

// Hash returns the transaction hash.
func (tx *Transaction) Hash() Hash { return tx.hash }

// EffectiveGasPrice returns the per-gas price actually paid under EIP-1559:
// min(MaxFee, baseFee+MaxTip). The ok result is false when MaxFee cannot
// cover the base fee, i.e. the transaction is not includable.
func (tx *Transaction) EffectiveGasPrice(baseFee Wei) (price Wei, ok bool) {
	if tx.MaxFee.Lt(baseFee) {
		return u256.Zero, false
	}
	price = baseFee.Add(tx.MaxTip)
	if price.Gt(tx.MaxFee) {
		price = tx.MaxFee
	}
	return price, true
}

// EffectiveTip returns the per-gas tip to the fee recipient at baseFee, and
// whether the transaction is includable.
func (tx *Transaction) EffectiveTip(baseFee Wei) (tip Wei, ok bool) {
	price, ok := tx.EffectiveGasPrice(baseFee)
	if !ok {
		return u256.Zero, false
	}
	return price.Sub(baseFee), true
}

// String implements fmt.Stringer.
func (tx *Transaction) String() string {
	return fmt.Sprintf("tx(%s from=%s nonce=%d)", tx.hash, tx.From, tx.Nonce)
}

// Log is an event emitted during transaction execution, mirroring
// execution-layer receipts' log entries. MEV detection (internal/mev) works
// from these exactly as the paper's scripts work from mainnet logs.
type Log struct {
	Address Address // emitting contract
	Topics  []Hash
	Data    []byte
	TxHash  Hash
	Index   uint // position within the block's flattened log list
}

// Trace records one internal ETH transfer observed while executing a
// transaction, mirroring the paper's use of Erigon traces to find direct
// payments to the fee recipient.
type Trace struct {
	TxHash Hash
	From   Address
	To     Address
	Value  Wei
}

// Receipt summarizes the execution of one transaction.
type Receipt struct {
	TxHash            Hash
	Status            uint8 // 1 success, 0 reverted
	GasUsed           uint64
	EffectiveGasPrice Wei
	Logs              []Log
}

// Succeeded reports whether the transaction executed without reverting.
func (r *Receipt) Succeeded() bool { return r.Status == 1 }

// Header is an execution-layer block header, restricted to the fields the
// measurement pipeline uses.
type Header struct {
	ParentHash   Hash
	Number       uint64
	Slot         uint64 // consensus-layer slot carrying this block
	Timestamp    uint64 // unix seconds
	FeeRecipient Address
	GasLimit     uint64
	GasUsed      uint64
	BaseFee      Wei
	TxRoot       Hash
	Extra        []byte // builder graffiti
}

// SealHash returns the header's identity hash.
func (h *Header) SealHash() Hash {
	bf := h.BaseFee.Bytes32()
	enc := rlp.Encode(rlp.List(
		rlp.String(h.ParentHash[:]),
		rlp.Uint(h.Number),
		rlp.Uint(h.Slot),
		rlp.Uint(h.Timestamp),
		rlp.String(h.FeeRecipient[:]),
		rlp.Uint(h.GasLimit),
		rlp.Uint(h.GasUsed),
		rlp.String(bf[:]),
		rlp.String(h.TxRoot[:]),
		rlp.String(h.Extra),
	))
	return crypto.Keccak256(enc)
}

// Block is a sealed execution payload.
type Block struct {
	Header *Header
	Txs    []*Transaction

	hash Hash
}

// NewBlock assembles a block, computing the transaction root and the block
// hash. The header is mutated to carry the computed TxRoot.
func NewBlock(header *Header, txs []*Transaction) *Block {
	header.TxRoot = ComputeTxRoot(txs)
	return &Block{Header: header, Txs: txs, hash: header.SealHash()}
}

// ComputeTxRoot derives a commitment to the ordered transaction list.
// Mainnet uses a Merkle-Patricia trie; a flat hash over the ordered
// transaction hashes provides the same binding property for the simulation.
func ComputeTxRoot(txs []*Transaction) Hash {
	parts := make([][]byte, 0, len(txs))
	for _, tx := range txs {
		h := tx.Hash()
		parts = append(parts, h[:])
	}
	return crypto.Keccak256(parts...)
}

// Hash returns the block's identity hash.
func (b *Block) Hash() Hash { return b.hash }

// Number returns the block height.
func (b *Block) Number() uint64 { return b.Header.Number }

// GasUsed returns the total gas consumed by the block.
func (b *Block) GasUsed() uint64 { return b.Header.GasUsed }

// Bundle is a searcher's atomic transaction sequence, submitted to builders
// through private order flow. Builders must include the transactions
// contiguously and in order, or not at all.
type Bundle struct {
	Txs []*Transaction
	// Searcher identifies the submitting searcher (its payment address).
	Searcher Address
	// TargetBlock restricts inclusion to one height; zero means any.
	TargetBlock uint64
	// DirectPayment is the amount the bundle transfers to the block's fee
	// recipient via coinbase-style internal transfer, on top of gas tips.
	DirectPayment Wei
}

// Hash returns a stable identity for the bundle.
func (b *Bundle) Hash() Hash {
	parts := make([][]byte, 0, len(b.Txs)+1)
	for _, tx := range b.Txs {
		h := tx.Hash()
		parts = append(parts, h[:])
	}
	parts = append(parts, b.Searcher[:])
	return crypto.Keccak256(parts...)
}

// GasLimit returns the total gas limit of the bundle's transactions.
func (b *Bundle) GasLimit() uint64 {
	var sum uint64
	for _, tx := range b.Txs {
		sum += tx.Gas
	}
	return sum
}
