package core_test

// Golden byte-identity test for the parallel analysis engine: the indexed,
// memoized, worker-pooled path must render every artifact byte-for-byte
// identically to the legacy sequential full-scan path. This is the
// engine's central contract (DESIGN.md §6) — any float reassociation,
// shard-boundary mistake, or map-order leak shows up here as a diff.

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ethpbs/pbslab/internal/core"
	"github.com/ethpbs/pbslab/internal/mev"
	"github.com/ethpbs/pbslab/internal/report"
	"github.com/ethpbs/pbslab/internal/sim"
)

// goldenDataset simulates a short window for one seed.
func goldenDataset(t testing.TB, seed uint64, days int) *sim.Result {
	t.Helper()
	sc := sim.DefaultScenario()
	sc.Seed = seed
	sc.End = sc.Start.Add(time.Duration(days) * 24 * time.Hour)
	sc.BlocksPerDay = 12
	sc.Validators = 200
	sc.Demand.Users = 120
	sc.Demand.TxPerBlock = sim.Flat(30)
	sc.SmallBuilderCount = 20
	res, err := sim.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParallelMatchesSequentialGolden(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			res := goldenDataset(t, seed, 4)
			labels := res.World.BuilderLabels()

			seq := core.New(res.Dataset, core.WithBuilderLabels(labels), core.WithSequential())
			par := core.New(res.Dataset, core.WithBuilderLabels(labels), core.WithWorkers(8))

			want := report.RenderAll(seq, 1)
			got := report.RenderAll(par, 8)

			if len(want) != len(got) {
				t.Fatalf("artifact count: sequential %d, parallel %d", len(want), len(got))
			}
			for i := range want {
				if want[i].Name != got[i].Name {
					t.Fatalf("artifact %d: name %q vs %q", i, want[i].Name, got[i].Name)
				}
				if !bytes.Equal(want[i].Data, got[i].Data) {
					t.Errorf("%s: parallel render differs from sequential (%d vs %d bytes)\n--- sequential ---\n%s\n--- parallel ---\n%s",
						want[i].Name, len(want[i].Data), len(got[i].Data),
						firstDiffContext(want[i].Data, got[i].Data), firstDiffContext(got[i].Data, want[i].Data))
				}
			}
		})
	}
}

// firstDiffContext returns a small window around the first differing byte.
func firstDiffContext(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	hi := i + 80
	if hi > len(a) {
		hi = len(a)
	}
	return fmt.Sprintf("...%s...", a[lo:hi])
}

// TestEngineRace hammers the memoized engine from many goroutines while the
// render worker pool runs, so `go test -race` exercises every concurrency
// seam: parallel classification, the sharded index build, sync.Once memos,
// keyed memos, and per-day reductions.
func TestEngineRace(t *testing.T) {
	res := goldenDataset(t, 1, 3)
	a := core.New(res.Dataset,
		core.WithBuilderLabels(res.World.BuilderLabels()),
		core.WithWorkers(8))

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.Figure3PaymentShares()
			a.Figure4PBSShare()
			a.Figure5RelayShares()
			a.Figure6HHI()
			a.Figure7BuildersPerRelay()
			a.Figure8BuilderShares()
			a.Figure9BlockValue()
			a.Figure10ProposerProfit()
			a.Figures11And12BuilderBoxes(11)
			a.Figure13BlockSize()
			a.Figure14PrivateTxShare()
			a.Figure15MEVPerBlock()
			a.Figure16MEVValueShare()
			a.Figure17CensoringShare()
			a.Figure18SanctionedShare()
			a.Figure19ProfitSplit()
			a.Figure20To22MEVKind(mev.KindSandwich)
			a.ClassifierCoverage()
			a.Table4RelayTrust()
			a.OFACUpdateLag(4)
			a.InclusionDelay()
			a.Clusters()
		}()
	}
	// Render concurrently with the direct calls above.
	arts := report.RenderAll(a, 8)
	wg.Wait()

	if len(arts) == 0 {
		t.Fatal("no artifacts rendered")
	}
	// A second render must reproduce the first bytes exactly (memo or not).
	again := report.RenderAll(a, 3)
	for i := range arts {
		if !bytes.Equal(arts[i].Data, again[i].Data) {
			t.Errorf("%s: repeated render differs", arts[i].Name)
		}
	}
}

// TestWithoutMemoMatchesMemoized checks the memo layer is transparent.
func TestWithoutMemoMatchesMemoized(t *testing.T) {
	res := goldenDataset(t, 2, 3)
	labels := res.World.BuilderLabels()
	memoized := core.New(res.Dataset, core.WithBuilderLabels(labels))
	fresh := core.New(res.Dataset, core.WithBuilderLabels(labels), core.WithoutMemo())

	w := report.RenderAll(memoized, 4)
	g := report.RenderAll(fresh, 4)
	for i := range w {
		if !bytes.Equal(w[i].Data, g[i].Data) {
			t.Errorf("%s: WithoutMemo render differs", w[i].Name)
		}
	}
}
