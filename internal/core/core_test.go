package core

import (
	"math"
	"testing"
	"time"

	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/dataset"
	"github.com/ethpbs/pbslab/internal/mev"
	"github.com/ethpbs/pbslab/internal/ofac"
	"github.com/ethpbs/pbslab/internal/p2p"
	"github.com/ethpbs/pbslab/internal/pbs"
	"github.com/ethpbs/pbslab/internal/types"
	"github.com/ethpbs/pbslab/internal/u256"
)

var (
	builderAddr = crypto.AddressFromSeed("builder/x")
	builderPub  = crypto.NewKey([]byte("builderkey/x")).Pub()
	propFee     = crypto.AddressFromSeed("proposer")
	userA       = crypto.AddressFromSeed("a")
	userB       = crypto.AddressFromSeed("b")
	start       = time.Date(2022, 9, 15, 6, 42, 59, 0, time.UTC)
)

// makeBlock constructs a dataset block with the given shape.
type blockSpec struct {
	number  uint64
	day     int
	pbs     bool   // adds payment tx and a relay claim
	relay   string // claiming relay (when pbs)
	tipGwei uint64 // per-tx tip
	txCount int
	// promisedBonus inflates the relay's announced value over the payment.
	promisedBonus float64
	// sanctionedSender routes one tx from a sanctioned address.
	sanctionedSender bool
	// publicSeen controls whether arrivals exist for the txs.
	publicSeen bool
}

type corpusBuilder struct {
	blocks   []*dataset.Block
	relays   map[string]*dataset.RelayData
	arrivals map[types.Hash]p2p.Observation
	labels   []mev.Label
}

func newCorpus() *corpusBuilder {
	return &corpusBuilder{
		relays:   map[string]*dataset.RelayData{},
		arrivals: map[types.Hash]p2p.Observation{},
	}
}

func (cb *corpusBuilder) add(spec blockSpec) *dataset.Block {
	blockTime := start.AddDate(0, 0, spec.day).Add(3 * time.Hour)
	feeRecipient := propFee
	if spec.pbs {
		feeRecipient = builderAddr
	}
	var txs []*types.Transaction
	var receipts []*types.Receipt
	tips := u256.Zero
	gasUsed := uint64(0)
	baseFee := types.Gwei(15)
	for i := 0; i < spec.txCount; i++ {
		sender := userA
		if spec.sanctionedSender && i == 0 {
			sender = crypto.AddressFromSeed("ofac/tornado/0")
		}
		tx := types.NewTransaction(uint64(spec.number*1000)+uint64(i), sender, userB,
			types.Ether(0.1), 21_000, types.Gwei(200), types.Gwei(spec.tipGwei), nil)
		txs = append(txs, tx)
		receipts = append(receipts, &types.Receipt{
			TxHash: tx.Hash(), Status: 1, GasUsed: 21_000,
			EffectiveGasPrice: baseFee.Add(types.Gwei(spec.tipGwei)),
		})
		tips = tips.Add(types.Gwei(spec.tipGwei).Mul64(21_000))
		gasUsed += 21_000
		if spec.publicSeen {
			cb.arrivals[tx.Hash()] = p2p.Observation{
				TxHash: tx.Hash(),
				Seen:   []time.Time{blockTime.Add(-5 * time.Second)},
			}
		}
	}

	payment := tips.Mul64(9).Div64(10) // builder keeps 10%
	if spec.pbs {
		payTx := types.NewTransaction(uint64(spec.number*1000)+900, builderAddr, propFee,
			payment, 21_000, types.Gwei(200), u256.Zero, nil)
		txs = append(txs, payTx)
		receipts = append(receipts, &types.Receipt{
			TxHash: payTx.Hash(), Status: 1, GasUsed: 21_000, EffectiveGasPrice: baseFee,
		})
		gasUsed += 21_000
	}

	b := &dataset.Block{
		Number:       spec.number,
		Hash:         crypto.Keccak256([]byte{byte(spec.number), byte(spec.number >> 8)}),
		Slot:         spec.number,
		Time:         blockTime,
		FeeRecipient: feeRecipient,
		GasUsed:      gasUsed,
		GasLimit:     30_000_000,
		BaseFee:      baseFee,
		Txs:          txs,
		Receipts:     receipts,
		Burned:       baseFee.Mul64(gasUsed),
		Tips:         tips,
	}
	cb.blocks = append(cb.blocks, b)

	if spec.pbs && spec.relay != "" {
		rd, ok := cb.relays[spec.relay]
		if !ok {
			rd = &dataset.RelayData{Name: spec.relay}
			cb.relays[spec.relay] = rd
		}
		promised := payment.Add(types.Ether(spec.promisedBonus))
		rd.Delivered = append(rd.Delivered, pbs.BidTrace{
			Slot: spec.number, BlockHash: b.Hash, BuilderPubkey: builderPub,
			ProposerFeeRecipient: propFee, Value: promised, BlockNumber: spec.number,
		})
		rd.Received = append(rd.Received, rd.Delivered[len(rd.Delivered)-1])
	}
	return b
}

func (cb *corpusBuilder) dataset() *dataset.Dataset {
	d := &dataset.Dataset{
		Start:       start,
		End:         start.AddDate(0, 0, 7),
		Blocks:      cb.blocks,
		MEVLabels:   cb.labels,
		MEVBySource: map[string][]mev.Label{},
		Arrivals:    cb.arrivals,
		Sanctions:   ofac.DefaultList(),
	}
	for _, rd := range cb.relays {
		d.Relays = append(d.Relays, *rd)
	}
	return d
}

func TestClassifierPBSDetection(t *testing.T) {
	cb := newCorpus()
	cb.add(blockSpec{number: 1, day: 0, pbs: true, relay: "R1", tipGwei: 10, txCount: 3, publicSeen: true})
	cb.add(blockSpec{number: 2, day: 0, pbs: false, tipGwei: 5, txCount: 2, publicSeen: true})
	a := New(cb.dataset())

	st1, _ := a.ByNumber(1)
	if !st1.PBS || !st1.PaymentDetected || len(st1.RelayClaims) != 1 {
		t.Errorf("block 1 classification: %+v", st1)
	}
	wantPayment := types.Gwei(10).Mul64(21_000).Mul64(3).Mul64(9).Div64(10)
	if st1.Payment != wantPayment {
		t.Errorf("payment = %s, want %s", st1.Payment, wantPayment)
	}
	st2, _ := a.ByNumber(2)
	if st2.PBS {
		t.Error("local block classified PBS")
	}
	// Proposer profit: PBS = payment; local = full value.
	if st2.ProposerProfit() != st2.Value {
		t.Error("local proposer profit != block value")
	}
	if st1.ProposerProfit() != st1.Payment {
		t.Error("PBS proposer profit != payment")
	}
	// Builder profit: value - payment > 0 here.
	if st1.BuilderProfitETH() <= 0 {
		t.Error("builder profit should be positive")
	}
}

func TestPaymentOnlyClassification(t *testing.T) {
	// A PBS block with the payment convention but no relay claim (the 0.4%
	// tail the paper mentions) must still classify as PBS.
	cb := newCorpus()
	cb.add(blockSpec{number: 1, day: 0, pbs: true, relay: "", tipGwei: 10, txCount: 2})
	a := New(cb.dataset())
	st, _ := a.ByNumber(1)
	if !st.PBS || len(st.RelayClaims) != 0 {
		t.Errorf("payment-only block: %+v", st)
	}
}

func TestPrivateTxDetection(t *testing.T) {
	cb := newCorpus()
	cb.add(blockSpec{number: 1, day: 0, pbs: true, relay: "R1", tipGwei: 5, txCount: 4, publicSeen: false})
	cb.add(blockSpec{number: 2, day: 0, pbs: false, tipGwei: 5, txCount: 4, publicSeen: true})
	a := New(cb.dataset())

	st1, _ := a.ByNumber(1)
	// All 4 user txs unseen -> private; payment tx excluded from counts.
	if st1.TotalTxs != 4 || st1.PrivateTxs != 4 {
		t.Errorf("block1 private = %d/%d", st1.PrivateTxs, st1.TotalTxs)
	}
	st2, _ := a.ByNumber(2)
	if st2.PrivateTxs != 0 {
		t.Errorf("block2 private = %d", st2.PrivateTxs)
	}

	split := a.Figure14PrivateTxShare()
	if got := split.PBS.Day(0); got != 1 {
		t.Errorf("PBS private share = %g", got)
	}
	if got := split.Local.Day(0); got != 0 {
		t.Errorf("local private share = %g", got)
	}
}

func TestSanctionedDetection(t *testing.T) {
	cb := newCorpus()
	cb.add(blockSpec{number: 1, day: 0, pbs: false, tipGwei: 5, txCount: 2, sanctionedSender: true})
	cb.add(blockSpec{number: 2, day: 0, pbs: false, tipGwei: 5, txCount: 2})
	a := New(cb.dataset())
	st1, _ := a.ByNumber(1)
	if !st1.Sanctioned {
		t.Error("sanctioned sender not detected")
	}
	st2, _ := a.ByNumber(2)
	if st2.Sanctioned {
		t.Error("clean block flagged")
	}
}

func TestFigure4Share(t *testing.T) {
	cb := newCorpus()
	for i := uint64(0); i < 8; i++ {
		cb.add(blockSpec{number: i + 1, day: int(i / 4), pbs: i%2 == 0, relay: "R1", tipGwei: 5, txCount: 1})
	}
	a := New(cb.dataset())
	share := a.Figure4PBSShare()
	if got := share.Day(0); got != 0.5 {
		t.Errorf("day0 PBS share = %g", got)
	}
}

func TestTable4Audit(t *testing.T) {
	cb := newCorpus()
	// Honest relay: promise == payment.
	cb.add(blockSpec{number: 1, day: 0, pbs: true, relay: "Honest", tipGwei: 100, txCount: 5})
	// Lying relay: promises 1 ETH extra.
	cb.add(blockSpec{number: 2, day: 0, pbs: true, relay: "Liar", tipGwei: 100, txCount: 5, promisedBonus: 1})
	a := New(cb.dataset())

	rows, total := a.Table4RelayTrust()
	byName := map[string]RelayTrustRow{}
	for _, r := range rows {
		byName[r.Relay] = r
	}
	if h := byName["Honest"]; math.Abs(h.ShareDelivered-1) > 1e-9 || h.OverPromisedBlockShare != 0 {
		t.Errorf("honest relay: %+v", h)
	}
	l := byName["Liar"]
	if l.ShareDelivered >= 1 || l.OverPromisedBlockShare != 1 {
		t.Errorf("lying relay: %+v", l)
	}
	if total.Blocks != 2 || total.ShareDelivered >= 1 {
		t.Errorf("total: %+v", total)
	}
}

func TestBuilderClustering(t *testing.T) {
	cb := newCorpus()
	cb.add(blockSpec{number: 1, day: 0, pbs: true, relay: "R1", tipGwei: 10, txCount: 2})
	cb.add(blockSpec{number: 2, day: 0, pbs: true, relay: "R1", tipGwei: 10, txCount: 2})
	a := New(cb.dataset(), WithBuilderLabels(map[types.Address]string{builderAddr: "megabuilder"}))

	clusters := a.Clusters()
	if len(clusters) != 1 {
		t.Fatalf("clusters = %d", len(clusters))
	}
	if clusters[0].Name != "megabuilder" || clusters[0].Blocks != 2 {
		t.Errorf("cluster: %+v", clusters[0])
	}
	if len(clusters[0].Pubkeys) != 1 || clusters[0].Pubkeys[0] != builderPub {
		t.Error("pubkeys not clustered")
	}
	st, _ := a.ByNumber(1)
	if st.BuilderCluster != "megabuilder" {
		t.Error("block not labeled with cluster")
	}
}

func TestCoverageReport(t *testing.T) {
	cb := newCorpus()
	cb.add(blockSpec{number: 1, day: 0, pbs: true, relay: "R1", tipGwei: 10, txCount: 2})
	cb.add(blockSpec{number: 2, day: 0, pbs: true, relay: "", tipGwei: 10, txCount: 2})
	cb.add(blockSpec{number: 3, day: 0, pbs: false, tipGwei: 10, txCount: 2})
	a := New(cb.dataset())
	rep := a.ClassifierCoverage()
	if rep.PBSBlocks != 2 {
		t.Fatalf("PBS blocks = %d", rep.PBSBlocks)
	}
	if rep.RelayClaimedShare != 0.5 || rep.PaymentShare != 1 {
		t.Errorf("coverage: %+v", rep)
	}
}

func TestFigure3SharesSumToOne(t *testing.T) {
	cb := newCorpus()
	cb.add(blockSpec{number: 1, day: 0, pbs: true, relay: "R1", tipGwei: 10, txCount: 3})
	cb.add(blockSpec{number: 2, day: 1, pbs: false, tipGwei: 4, txCount: 2})
	a := New(cb.dataset())
	ps := a.Figure3PaymentShares()
	for day := 0; day <= 1; day++ {
		sum := ps.BaseFee.Day(day) + ps.Priority.Day(day) + ps.Direct.Day(day)
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("day %d shares sum to %g", day, sum)
		}
	}
	// Base fee dominates at these tips (15 gwei base vs 10 gwei tip).
	if ps.BaseFee.Day(0) < ps.Priority.Day(0) {
		t.Error("base fee share should dominate")
	}
}

func TestMEVFigures(t *testing.T) {
	cb := newCorpus()
	b1 := cb.add(blockSpec{number: 1, day: 0, pbs: true, relay: "R1", tipGwei: 10, txCount: 3})
	cb.add(blockSpec{number: 2, day: 0, pbs: false, tipGwei: 10, txCount: 3})
	// Label the PBS block's first two txs as a sandwich.
	cb.labels = append(cb.labels, mev.Label{
		Block: 1, Kind: mev.KindSandwich,
		Txs:   []types.Hash{b1.Txs[0].Hash(), b1.Txs[2].Hash()},
		Actor: userA,
	})
	a := New(cb.dataset())

	st, _ := a.ByNumber(1)
	if st.Sandwiches != 1 || st.MEVTxs != 2 {
		t.Errorf("mev stats: %+v", st)
	}
	if st.MEVValueShare <= 0 || st.MEVValueShare > 1 {
		t.Errorf("mev value share = %g", st.MEVValueShare)
	}
	split := a.Figure15MEVPerBlock()
	if split.PBS.Day(0) != 2 || split.Local.Day(0) != 0 {
		t.Errorf("fig15: pbs=%g local=%g", split.PBS.Day(0), split.Local.Day(0))
	}
	kinds := a.Figure20To22MEVKind(mev.KindSandwich)
	if kinds.PBS.Day(0) != 1 {
		t.Errorf("fig20 sandwiches = %g", kinds.PBS.Day(0))
	}
	if a.MEVTotals()[mev.KindSandwich] != 1 {
		t.Error("MEV totals wrong")
	}
}

func TestFigure17And18(t *testing.T) {
	cb := newCorpus()
	cb.add(blockSpec{number: 1, day: 0, pbs: true, relay: "Censoring", tipGwei: 10, txCount: 2})
	cb.add(blockSpec{number: 2, day: 0, pbs: true, relay: "Open", tipGwei: 10, txCount: 2})
	cb.add(blockSpec{number: 3, day: 0, pbs: false, tipGwei: 10, txCount: 2, sanctionedSender: true})
	d := cb.dataset()
	for i := range d.Relays {
		if d.Relays[i].Name == "Censoring" {
			d.Relays[i].OFACCompliant = true
		}
	}
	a := New(d)

	censorShare := a.Figure17CensoringShare()
	if got := censorShare.Day(0); got != 0.5 {
		t.Errorf("censoring share = %g", got)
	}
	sanc := a.Figure18SanctionedShare()
	if sanc.Local.Day(0) != 1 || sanc.PBS.Day(0) != 0 {
		t.Errorf("sanctioned: pbs=%g local=%g", sanc.PBS.Day(0), sanc.Local.Day(0))
	}
}

func TestEthicalFilterGap(t *testing.T) {
	cb := newCorpus()
	b1 := cb.add(blockSpec{number: 1, day: 0, pbs: true, relay: "Ethical", tipGwei: 10, txCount: 3})
	cb.labels = append(cb.labels, mev.Label{
		Block: 1, Kind: mev.KindSandwich,
		Txs: []types.Hash{b1.Txs[0].Hash(), b1.Txs[2].Hash()},
	})
	d := cb.dataset()
	d.Relays[0].MEVFilter = true
	a := New(d)
	gaps := a.EthicalFilterGap()
	if gaps["Ethical"] != 1 {
		t.Errorf("filter gap = %v", gaps)
	}
}

func TestFigure19Split(t *testing.T) {
	cb := newCorpus()
	cb.add(blockSpec{number: 1, day: 0, pbs: true, relay: "R1", tipGwei: 100, txCount: 5})
	a := New(cb.dataset())
	split := a.Figure19ProfitSplit()
	// Builder keeps 10% by construction.
	if got := split.ProposerShare.Day(0); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("proposer share = %g", got)
	}
	if got := split.BuilderShare.Day(0); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("builder share = %g", got)
	}
}

func TestEmptyDatasetDoesNotPanic(t *testing.T) {
	d := &dataset.Dataset{
		Start: start, End: start,
		Sanctions: ofac.DefaultList(),
		Arrivals:  map[types.Hash]p2p.Observation{},
	}
	a := New(d)
	_ = a.Figure4PBSShare()
	_ = a.Figure19ProfitSplit()
	_, _ = a.Table4RelayTrust()
	_ = a.ClassifierCoverage()
	_ = a.Clusters()
}

func TestRelayConcentration(t *testing.T) {
	cb := newCorpus()
	// Day 0: monopoly. Among incumbents Gini is 0 (one player holds all of
	// its own market), while HHI correctly flags the monopoly at 1.0 —
	// the paper's reason for preferring HHI.
	cb.add(blockSpec{number: 1, day: 0, pbs: true, relay: "R1", tipGwei: 10, txCount: 1})
	cb.add(blockSpec{number: 2, day: 0, pbs: true, relay: "R1", tipGwei: 10, txCount: 1})
	// Day 1: duopoly 1:1.
	cb.add(blockSpec{number: 3, day: 1, pbs: true, relay: "R1", tipGwei: 10, txCount: 1})
	cb.add(blockSpec{number: 4, day: 1, pbs: true, relay: "R2", tipGwei: 10, txCount: 1})
	a := New(cb.dataset())
	cmp := a.RelayConcentration()
	if got := cmp.HHI.Day(0); got != 1 {
		t.Errorf("monopoly HHI = %g", got)
	}
	if got := cmp.Gini.Day(0); got != 0 {
		t.Errorf("monopoly Gini = %g (blind to player count)", got)
	}
	if got := cmp.HHI.Day(1); got != 0.5 {
		t.Errorf("duopoly HHI = %g", got)
	}
	empty := New((&corpusBuilder{relays: map[string]*dataset.RelayData{}, arrivals: map[types.Hash]p2p.Observation{}}).dataset())
	if empty.RelayConcentration().HHI.Len() != 0 {
		t.Error("empty concentration should be empty")
	}
}
