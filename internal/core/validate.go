package core

import (
	"fmt"
	"io"
	"sort"

	"github.com/ethpbs/pbslab/internal/dataset"
	"github.com/ethpbs/pbslab/internal/types"
	"github.com/ethpbs/pbslab/internal/u256"
)

// Violation kinds reported by Validate.
const (
	// VioOrder: block numbers, slots or timestamps are not strictly
	// increasing and contiguous in chain order.
	VioOrder = "order"
	// VioWindow: a block's timestamp falls outside the dataset's declared
	// [Start, End] window (day-boundary misalignment).
	VioWindow = "window"
	// VioConservation: a block's fee accounting disagrees with its
	// receipts — recomputed tips, burn, or gas do not match the stored
	// values, or a receipt's effective price is below the base fee.
	VioConservation = "conservation"
	// VioLabel: an MEV label points at a block or transaction the corpus
	// does not contain.
	VioLabel = "label"
	// VioRelay: a relay's delivered trace references a block that is not
	// on the canonical chain or disagrees with it.
	VioRelay = "relay"
)

// Violation is one dataset invariant failure.
type Violation struct {
	Kind string
	// Block is the implicated block number (0 when the violation is not
	// attributable to one block).
	Block  uint64
	Detail string
}

func (v Violation) String() string {
	if v.Block != 0 {
		return fmt.Sprintf("[%s] block %d: %s", v.Kind, v.Block, v.Detail)
	}
	return fmt.Sprintf("[%s] %s", v.Kind, v.Detail)
}

// ValidationReport is the outcome of Validate: every violation found, and
// the quarantine set — block numbers implicated in at least one violation,
// which a cautious pipeline should exclude before analysis.
type ValidationReport struct {
	Violations []Violation
	// Quarantined lists implicated block numbers, sorted ascending.
	Quarantined []uint64
}

// OK reports whether the dataset passed every invariant.
func (r ValidationReport) OK() bool { return len(r.Violations) == 0 }

// Render writes the human-readable quarantine report.
func (r ValidationReport) Render(w io.Writer) {
	if r.OK() {
		fmt.Fprintln(w, "# dataset validation: all invariants hold")
		return
	}
	fmt.Fprintf(w, "# dataset validation: %d violation(s), %d block(s) quarantined\n",
		len(r.Violations), len(r.Quarantined))
	for _, v := range r.Violations {
		fmt.Fprintln(w, v)
	}
}

// Validate checks the corpus invariants the analysis relies on: chain
// order, window alignment, per-block fee conservation against receipts,
// MEV-label referential integrity, and relay delivered-trace consistency.
// It reads only dataset types — like the rest of the pipeline it never
// sees simulator ground truth — so it applies equally to a crawled corpus.
func Validate(ds *dataset.Dataset) ValidationReport {
	var rep ValidationReport
	quarantine := map[uint64]bool{}
	flag := func(kind string, block uint64, format string, args ...any) {
		rep.Violations = append(rep.Violations, Violation{
			Kind: kind, Block: block, Detail: fmt.Sprintf(format, args...),
		})
		if block != 0 {
			quarantine[block] = true
		}
	}

	byNum := make(map[uint64]*dataset.Block, len(ds.Blocks))
	byHash := make(map[types.Hash]*dataset.Block, len(ds.Blocks))
	txBlock := map[types.Hash]uint64{}
	for i, b := range ds.Blocks {
		byNum[b.Number] = b
		byHash[b.Hash] = b
		for _, tx := range b.Txs {
			txBlock[tx.Hash()] = b.Number
		}

		// Chain order: contiguous numbers, strictly increasing slots and
		// timestamps.
		if i > 0 {
			prev := ds.Blocks[i-1]
			if b.Number != prev.Number+1 {
				flag(VioOrder, b.Number, "number %d follows %d (want %d)", b.Number, prev.Number, prev.Number+1)
			}
			if b.Slot <= prev.Slot {
				flag(VioOrder, b.Number, "slot %d not after %d", b.Slot, prev.Slot)
			}
			if !b.Time.After(prev.Time) {
				flag(VioOrder, b.Number, "timestamp %s not after %s", b.Time, prev.Time)
			}
		}

		// Window alignment: every block lies inside [Start, End] and on a
		// non-negative day index.
		if b.Time.Before(ds.Start) || b.Time.After(ds.End) {
			flag(VioWindow, b.Number, "timestamp %s outside window [%s, %s]",
				b.Time, ds.Start, ds.End)
		}

		validateConservation(b, flag)
	}

	// MEV labels must reference existing blocks and transactions within
	// them.
	for _, l := range ds.MEVLabels {
		if _, ok := byNum[l.Block]; !ok {
			flag(VioLabel, l.Block, "%s label references unknown block", l.Kind)
			continue
		}
		for _, h := range l.Txs {
			if got, ok := txBlock[h]; !ok {
				flag(VioLabel, l.Block, "%s label tx %s not in corpus", l.Kind, h)
			} else if got != l.Block {
				flag(VioLabel, l.Block, "%s label tx %s is in block %d", l.Kind, h, got)
			}
		}
	}

	// Relay delivered traces must agree with the canonical chain: the
	// delivered block exists, and its number matches the trace.
	for _, r := range ds.Relays {
		for _, tr := range r.Delivered {
			b, ok := byHash[tr.BlockHash]
			if !ok {
				flag(VioRelay, tr.BlockNumber, "relay %s delivered unknown block %s", r.Name, tr.BlockHash)
				continue
			}
			if tr.BlockNumber != 0 && tr.BlockNumber != b.Number {
				flag(VioRelay, b.Number, "relay %s trace says number %d", r.Name, tr.BlockNumber)
			}
		}
	}

	rep.Quarantined = make([]uint64, 0, len(quarantine))
	for n := range quarantine {
		rep.Quarantined = append(rep.Quarantined, n)
	}
	sort.Slice(rep.Quarantined, func(i, j int) bool { return rep.Quarantined[i] < rep.Quarantined[j] })
	return rep
}

// validateConservation recomputes a block's fee totals from its receipts
// and checks them against the stored values.
func validateConservation(b *dataset.Block, flag func(kind string, block uint64, format string, args ...any)) {
	if len(b.Receipts) != len(b.Txs) {
		flag(VioConservation, b.Number, "%d receipts for %d txs", len(b.Receipts), len(b.Txs))
		return
	}
	gas := uint64(0)
	burned, tips := u256.Zero, u256.Zero
	for i, rcpt := range b.Receipts {
		if rcpt.TxHash != b.Txs[i].Hash() {
			flag(VioConservation, b.Number, "receipt %d hash %s, tx hash %s", i, rcpt.TxHash, b.Txs[i].Hash())
			return
		}
		if rcpt.EffectiveGasPrice.Lt(b.BaseFee) {
			flag(VioConservation, b.Number, "receipt %d effective price %s below base fee %s",
				i, rcpt.EffectiveGasPrice, b.BaseFee)
			return
		}
		gas += rcpt.GasUsed
		burned = burned.Add(b.BaseFee.Mul64(rcpt.GasUsed))
		tips = tips.Add(rcpt.EffectiveGasPrice.SatSub(b.BaseFee).Mul64(rcpt.GasUsed))
	}
	if gas != b.GasUsed {
		flag(VioConservation, b.Number, "receipts burn %d gas, header says %d", gas, b.GasUsed)
	}
	if b.GasUsed > b.GasLimit {
		flag(VioConservation, b.Number, "gas used %d above limit %d", b.GasUsed, b.GasLimit)
	}
	if !burned.Eq(b.Burned) {
		flag(VioConservation, b.Number, "recomputed burn %s, stored %s", burned, b.Burned)
	}
	if !tips.Eq(b.Tips) {
		flag(VioConservation, b.Number, "recomputed tips %s, stored %s", tips, b.Tips)
	}
}
