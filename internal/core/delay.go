package core

import (
	"github.com/ethpbs/pbslab/internal/stats"
)

// DelayReport compares mempool-to-inclusion waiting times between regular
// and sanctioned transactions. The paper's related work (Yang et al.)
// measured sanctioned transactions waiting 68% longer on average in the
// first months of PBS; the mechanism — most builders and half the relays
// filter them, so they wait for a non-filtering block — is exactly what the
// simulator wires, and this analysis re-measures it from the data.
type DelayReport struct {
	// Seconds from first observer sighting to block inclusion.
	Regular    stats.Box
	Sanctioned stats.Box
	// MeanRatio is SanctionedMean / RegularMean.
	MeanRatio float64
}

// InclusionDelay measures waiting times for every publicly observed
// transaction. Transactions never seen by an observer (private flow) have
// no public waiting time and are excluded, as in the paper's methodology.
func (a *Analysis) scanInclusionDelay() DelayReport {
	var regular, sanctioned []float64
	for _, st := range a.stats {
		b := st.Block
		for _, tx := range b.Txs {
			obs, ok := a.ds.Arrivals[tx.Hash()]
			if !ok {
				continue
			}
			first, seen := obs.FirstSeen()
			if !seen || first.After(b.Time) {
				continue
			}
			wait := b.Time.Sub(first).Seconds()
			isSanctioned := a.ds.Sanctions.IsSanctioned(tx.From, b.Time) ||
				a.ds.Sanctions.IsSanctioned(tx.To, b.Time)
			if isSanctioned {
				sanctioned = append(sanctioned, wait)
			} else {
				regular = append(regular, wait)
			}
		}
	}
	rep := DelayReport{
		Regular:    stats.BoxOf(regular),
		Sanctioned: stats.BoxOf(sanctioned),
	}
	if rep.Regular.Mean > 0 {
		rep.MeanRatio = rep.Sanctioned.Mean / rep.Regular.Mean
	}
	return rep
}
