package core

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"github.com/ethpbs/pbslab/internal/mev"
	"github.com/ethpbs/pbslab/internal/stats"
)

// RenderSeries writes a day-indexed series as "day,value" CSV rows, sampled
// every step days (1 = all days).
func RenderSeries(w io.Writer, name string, s stats.Series, step int) {
	if step < 1 {
		step = 1
	}
	fmt.Fprintf(w, "# %s\n", name)
	for i := 0; i < s.Len(); i += step {
		day := s.Start + i
		v := s.Values[i]
		if math.IsNaN(v) {
			fmt.Fprintf(w, "%d,\n", day)
			continue
		}
		fmt.Fprintf(w, "%d,%.6f\n", day, v)
	}
}

// RenderMultiSeries writes several named series side by side as CSV.
func RenderMultiSeries(w io.Writer, title string, series map[string]stats.Series, step int) {
	if step < 1 {
		step = 1
	}
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# %s\nday,%s\n", title, strings.Join(names, ","))

	lo, hi := math.MaxInt32, -1
	for _, s := range series {
		if s.Len() == 0 {
			continue
		}
		if s.Start < lo {
			lo = s.Start
		}
		if end := s.Start + s.Len() - 1; end > hi {
			hi = end
		}
	}
	if hi < 0 {
		return
	}
	for day := lo; day <= hi; day += step {
		row := []string{fmt.Sprintf("%d", day)}
		for _, n := range names {
			v := series[n].Day(day)
			if math.IsNaN(v) {
				row = append(row, "")
			} else {
				row = append(row, fmt.Sprintf("%.6f", v))
			}
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// RenderTable4 prints the relay trust audit in the paper's column order.
func RenderTable4(w io.Writer, rows []RelayTrustRow, total RelayTrustRow) {
	fmt.Fprintln(w, "# Table 4: delivered vs promised value and sanctioned blocks per relay")
	fmt.Fprintf(w, "%-24s %14s %14s %10s %12s %12s %10s\n",
		"relay", "delivered[ETH]", "promised[ETH]", "share[%]", "overprom[%]", "sanctioned", "share[%]")
	line := func(r RelayTrustRow) {
		name := r.Relay
		if r.OFACCompliant {
			name += " *"
		}
		fmt.Fprintf(w, "%-24s %14.4f %14.4f %10.4f %12.4f %12d %10.4f\n",
			name, r.DeliveredETH, r.PromisedETH, 100*r.ShareDelivered,
			100*r.OverPromisedBlockShare, r.SanctionedBlocks, 100*r.SanctionedShare)
	}
	for _, r := range rows {
		line(r)
	}
	fmt.Fprintln(w, strings.Repeat("-", 102))
	line(total)
	fmt.Fprintln(w, "(* announces OFAC compliance)")
}

// RenderTables2And3 prints the relay registry and policy matrix.
func RenderTables2And3(w io.Writer, rows []RelayPolicyRow) {
	fmt.Fprintln(w, "# Tables 2+3: relay registry and policies")
	fmt.Fprintf(w, "%-24s %-45s %-10s %-28s %-15s %-10s\n",
		"relay", "endpoint", "fork", "builders", "censorship", "mev-filter")
	for _, r := range rows {
		cens := "x"
		if r.OFACCompliant {
			cens = "OFAC-compliant"
		}
		filt := "x"
		if r.MEVFilter {
			filt = "front-running"
		}
		fmt.Fprintf(w, "%-24s %-45s %-10s %-28s %-15s %-10s\n",
			r.Relay, r.Endpoint, r.Fork, r.BuilderAccess, cens, filt)
	}
}

// RenderBuilderBoxes prints the Figure 11/12 box statistics.
func RenderBuilderBoxes(w io.Writer, boxes []BuilderBox) {
	fmt.Fprintln(w, "# Figures 11+12: builder and proposer profit per builder [ETH]")
	fmt.Fprintf(w, "%-28s %8s | %10s %10s %10s | %10s %10s %10s\n",
		"builder", "blocks", "b.q1", "b.median", "b.mean", "p.q1", "p.median", "p.mean")
	for _, b := range boxes {
		fmt.Fprintf(w, "%-28s %8d | %10.5f %10.5f %10.5f | %10.5f %10.5f %10.5f\n",
			b.Cluster, b.Blocks,
			b.Builder.Q1, b.Builder.Median, b.Builder.Mean,
			b.Proposer.Q1, b.Proposer.Median, b.Proposer.Mean)
	}
}

// RenderTable5 prints builder identity clusters.
func RenderTable5(w io.Writer, clusters []*Cluster, max int) {
	fmt.Fprintln(w, "# Table 5: builder fee recipients and public keys")
	for i, c := range clusters {
		if max > 0 && i >= max {
			break
		}
		fmt.Fprintf(w, "%-28s %s  blocks=%d\n", c.Name, c.FeeRecipient.Hex(), c.Blocks)
		for _, p := range c.Pubkeys {
			fmt.Fprintf(w, "    %s\n", p.Hex())
		}
	}
}

// RenderCoverage prints the classifier-coverage measurement.
func RenderCoverage(w io.Writer, rep CoverageReport) {
	fmt.Fprintf(w, "# Classifier coverage (Section 4)\n")
	fmt.Fprintf(w, "PBS blocks:             %d\n", rep.PBSBlocks)
	fmt.Fprintf(w, "relay-claimed share:    %.4f\n", rep.RelayClaimedShare)
	fmt.Fprintf(w, "payment-conv. share:    %.4f\n", rep.PaymentShare)
	fmt.Fprintf(w, "no-payment self-built:  %.4f\n", rep.NoPaymentSelfBuilt)
	fmt.Fprintf(w, "multi-relay share:      %.4f\n", rep.MultiRelayClaimsShare)
}

// Summary is the one-screen digest of every headline number; cmd/pbslab
// prints it after a run, and EXPERIMENTS.md quotes it.
func (a *Analysis) Summary(w io.Writer) {
	fmt.Fprintf(w, "=== pbslab analysis summary ===\n")
	counts := a.Counts()
	fmt.Fprintf(w, "blocks=%d txs=%d logs=%d traces=%d days=%d\n",
		counts.Blocks, counts.Transactions, counts.Logs, counts.Traces, a.ds.Days())

	share := a.Figure4PBSShare()
	fmt.Fprintf(w, "PBS share: first-day=%.2f last-day=%.2f mean=%.2f\n",
		share.Day(share.Start), share.Day(share.Start+share.Len()-1), share.MeanValue())

	hhi := a.Figure6HHI()
	rMin, rMax := hhi.Relays.MinMax()
	bMin, bMax := hhi.Builders.MinMax()
	fmt.Fprintf(w, "relay HHI: min=%.2f max=%.2f mean=%.2f | builder HHI: min=%.2f max=%.2f mean=%.2f\n",
		rMin, rMax, hhi.Relays.MeanValue(), bMin, bMax, hhi.Builders.MeanValue())

	val := a.Figure9BlockValue()
	fmt.Fprintf(w, "block value [ETH]: PBS mean=%.4f local mean=%.4f ratio=%.2f\n",
		val.PBS.MeanValue(), val.Local.MeanValue(), val.PBS.MeanValue()/val.Local.MeanValue())

	profit := a.Figure10ProposerProfit()
	fmt.Fprintf(w, "proposer profit [ETH]: PBS median=%.4f local median=%.4f\n",
		profit.PBSMedian.MeanValue(), profit.LocalMedian.MeanValue())

	mevSplit := a.Figure15MEVPerBlock()
	fmt.Fprintf(w, "MEV txs/block: PBS=%.2f local=%.2f\n",
		mevSplit.PBS.MeanValue(), mevSplit.Local.MeanValue())
	mevShare := a.Figure16MEVValueShare()
	fmt.Fprintf(w, "MEV value share: PBS=%.3f local=%.3f\n",
		mevShare.PBS.MeanValue(), mevShare.Local.MeanValue())

	sanc := a.Figure18SanctionedShare()
	fmt.Fprintf(w, "sanctioned-block share: PBS=%.4f local=%.4f (local/PBS=%.1fx)\n",
		sanc.PBS.MeanValue(), sanc.Local.MeanValue(),
		sanc.Local.MeanValue()/math.Max(sanc.PBS.MeanValue(), 1e-9))

	_, total := a.Table4RelayTrust()
	fmt.Fprintf(w, "relay trust: delivered %.2f of promised %.2f ETH (%.3f%%), over-promised blocks %.3f%%\n",
		total.DeliveredETH, total.PromisedETH, 100*total.ShareDelivered,
		100*total.OverPromisedBlockShare)

	cov := a.ClassifierCoverage()
	fmt.Fprintf(w, "classifier: relay-claimed=%.3f payment=%.3f multi-relay=%.3f\n",
		cov.RelayClaimedShare, cov.PaymentShare, cov.MultiRelayClaimsShare)

	totals := a.MEVTotals()
	fmt.Fprintf(w, "MEV totals: sandwich=%d arbitrage=%d liquidation=%d\n",
		totals[mev.KindSandwich], totals[mev.KindArbitrage], totals[mev.KindLiquidation])

	gaps := a.EthicalFilterGap()
	names := make([]string, 0, len(gaps))
	for name := range gaps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "MEV-filter gap: %d sandwiches through %s\n", gaps[name], name)
	}
}
