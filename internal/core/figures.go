package core

import (
	"math"
	"sort"

	"github.com/ethpbs/pbslab/internal/mev"
	"github.com/ethpbs/pbslab/internal/stats"
	"github.com/ethpbs/pbslab/internal/types"
)

// PaymentShares is Figure 3: the daily split of user payments between the
// burned base fee, priority fees and direct transfers.
type PaymentShares struct {
	BaseFee  stats.Series
	Priority stats.Series
	Direct   stats.Series
}

// scanFigure3PaymentShares is the sequential full-scan path for Figure 3.
func (a *Analysis) scanFigure3PaymentShares() PaymentShares {
	g := stats.NewGrouped()
	for _, st := range a.stats {
		g.Add(st.Day, "base", types.ToEther(st.Burned))
		tips := types.ToEther(st.Value) - types.ToEther(st.DirectTransfers)
		g.Add(st.Day, "priority", tips)
		g.Add(st.Day, "direct", types.ToEther(st.DirectTransfers))
	}
	return PaymentShares{
		BaseFee:  g.ShareOfDay("base"),
		Priority: g.ShareOfDay("priority"),
		Direct:   g.ShareOfDay("direct"),
	}
}

// scanFigure4PBSShare is the sequential full-scan path for Figure 4.
func (a *Analysis) scanFigure4PBSShare() stats.Series {
	g := stats.NewGrouped()
	for _, st := range a.stats {
		label := "local"
		if st.PBS {
			label = "pbs"
		}
		g.Add(st.Day, label, 1)
	}
	return g.ShareOfDay("pbs")
}

// Figure5RelayShares computes each relay's daily share of all blocks, with
// multi-relay blocks attributed fractionally.
func (a *Analysis) scanFigure5RelayShares() map[string]stats.Series {
	g := stats.NewGrouped()
	for _, st := range a.stats {
		if len(st.RelayClaims) == 0 {
			g.Add(st.Day, "(none)", 1)
			continue
		}
		frac := 1.0 / float64(len(st.RelayClaims))
		for _, r := range st.RelayClaims {
			g.Add(st.Day, r, frac)
		}
	}
	out := map[string]stats.Series{}
	for _, name := range g.Groups() {
		if name == "(none)" {
			continue
		}
		out[name] = g.ShareOfDay(name)
	}
	return out
}

// HHISeries is Figure 6: daily concentration of relays and builders.
type HHISeries struct {
	Relays   stats.Series
	Builders stats.Series
}

// scanFigure6HHI is the sequential full-scan path for Figure 6.
func (a *Analysis) scanFigure6HHI() HHISeries {
	relays := stats.NewGrouped()
	builders := stats.NewGrouped()
	for _, st := range a.stats {
		if len(st.RelayClaims) > 0 {
			frac := 1.0 / float64(len(st.RelayClaims))
			for _, r := range st.RelayClaims {
				relays.Add(st.Day, r, frac)
			}
		}
		if st.PBS && st.BuilderCluster != "" {
			builders.Add(st.Day, st.BuilderCluster, 1)
		}
	}
	return HHISeries{Relays: relays.DailyHHI(), Builders: builders.DailyHHI()}
}

// Figure7BuildersPerRelay counts, per relay and day, the distinct builder
// pubkeys that submitted blocks (from builder_blocks_received).
func (a *Analysis) scanFigure7BuildersPerRelay() map[string]stats.Series {
	out := map[string]stats.Series{}
	slotDays := a.slotDayIndex()
	for _, r := range a.ds.Relays {
		perDay := map[int]map[types.PubKey]bool{}
		for _, tr := range r.Received {
			day, ok := slotDays[tr.Slot]
			if !ok {
				continue
			}
			if perDay[day] == nil {
				perDay[day] = map[types.PubKey]bool{}
			}
			perDay[day][tr.BuilderPubkey] = true
		}
		g := stats.NewGrouped()
		for day, pubs := range perDay {
			g.Add(day, "n", float64(len(pubs)))
		}
		out[r.Name] = g.Reduce("n", stats.Sum)
	}
	return out
}

// slotDayIndex maps slots to day indexes via the block corpus.
func (a *Analysis) slotDayIndex() map[uint64]int {
	out := map[uint64]int{}
	for _, st := range a.stats {
		out[st.Block.Slot] = st.Day
	}
	return out
}

// Figure8BuilderShares computes each builder cluster's daily share of all
// blocks.
func (a *Analysis) scanFigure8BuilderShares() map[string]stats.Series {
	g := stats.NewGrouped()
	for _, st := range a.stats {
		label := "(local)"
		if st.PBS {
			label = st.BuilderCluster
			if label == "" {
				label = "(unattributed)"
			}
		}
		g.Add(st.Day, label, 1)
	}
	out := map[string]stats.Series{}
	for _, name := range g.Groups() {
		if name == "(local)" {
			continue
		}
		out[name] = g.ShareOfDay(name)
	}
	return out
}

// ValueSplit is a PBS/non-PBS pair of series.
type ValueSplit struct {
	PBS   stats.Series
	Local stats.Series
}

// Figure9BlockValue computes daily mean block value (ETH) for PBS and
// non-PBS blocks (the scatter's central tendency).
func (a *Analysis) scanFigure9BlockValue() ValueSplit {
	g := stats.NewGrouped()
	for _, st := range a.stats {
		label := "local"
		if st.PBS {
			label = "pbs"
		}
		g.Add(st.Day, label, types.ToEther(st.Value))
	}
	return ValueSplit{
		PBS:   g.Reduce("pbs", stats.Mean),
		Local: g.Reduce("local", stats.Mean),
	}
}

// ProfitBands is Figure 10: daily median proposer profit with quartiles.
type ProfitBands struct {
	PBSMedian, PBSQ1, PBSQ3       stats.Series
	LocalMedian, LocalQ1, LocalQ3 stats.Series
}

// scanFigure10ProposerProfit is the sequential full-scan path for Figure 10.
func (a *Analysis) scanFigure10ProposerProfit() ProfitBands {
	g := stats.NewGrouped()
	for _, st := range a.stats {
		label := "local"
		if st.PBS {
			label = "pbs"
		}
		g.Add(st.Day, label, types.ToEther(st.ProposerProfit()))
	}
	q := func(p float64) func([]float64) float64 {
		return func(v []float64) float64 { return stats.Quantile(v, p) }
	}
	return ProfitBands{
		PBSMedian: g.Reduce("pbs", stats.Median),
		PBSQ1:     g.Reduce("pbs", q(0.25)),
		PBSQ3:     g.Reduce("pbs", q(0.75)),

		LocalMedian: g.Reduce("local", stats.Median),
		LocalQ1:     g.Reduce("local", q(0.25)),
		LocalQ3:     g.Reduce("local", q(0.75)),
	}
}

// BuilderBox is one builder's profit distribution (Figures 11/12).
type BuilderBox struct {
	Cluster  string
	Blocks   int
	Builder  stats.Box // builder profit per block, ETH (can be negative)
	Proposer stats.Box // proposer payment per block, ETH
}

// Figures11And12BuilderBoxes computes per-cluster profit distributions for
// the top n builders by block count.
func (a *Analysis) scanFigures11And12BuilderBoxes(n int) []BuilderBox {
	builderSamples := map[string][]float64{}
	proposerSamples := map[string][]float64{}
	blocks := map[string]int{}
	for _, st := range a.stats {
		if !st.PBS || st.BuilderCluster == "" {
			continue
		}
		c := st.BuilderCluster
		builderSamples[c] = append(builderSamples[c], st.BuilderProfitETH())
		proposerSamples[c] = append(proposerSamples[c], types.ToEther(st.Payment))
		blocks[c]++
	}
	names := make([]string, 0, len(blocks))
	for c := range blocks {
		names = append(names, c)
	}
	sort.Slice(names, func(i, j int) bool {
		if blocks[names[i]] != blocks[names[j]] {
			return blocks[names[i]] > blocks[names[j]]
		}
		return names[i] < names[j]
	})
	if n > 0 && len(names) > n {
		names = names[:n]
	}
	out := make([]BuilderBox, 0, len(names))
	for _, c := range names {
		out = append(out, BuilderBox{
			Cluster:  c,
			Blocks:   blocks[c],
			Builder:  stats.BoxOf(builderSamples[c]),
			Proposer: stats.BoxOf(proposerSamples[c]),
		})
	}
	return out
}

// SizeBands is Figure 13: daily mean gas used with standard deviation.
type SizeBands struct {
	PBSMean, PBSStd     stats.Series
	LocalMean, LocalStd stats.Series
	Target              float64
}

// scanFigure13BlockSize is the sequential full-scan path for Figure 13.
func (a *Analysis) scanFigure13BlockSize() SizeBands {
	g := stats.NewGrouped()
	var target float64
	for _, st := range a.stats {
		label := "local"
		if st.PBS {
			label = "pbs"
		}
		g.Add(st.Day, label, float64(st.Block.GasUsed))
		target = float64(st.Block.GasLimit) / 2
	}
	return SizeBands{
		PBSMean:   g.Reduce("pbs", stats.Mean),
		PBSStd:    g.Reduce("pbs", stats.Std),
		LocalMean: g.Reduce("local", stats.Mean),
		LocalStd:  g.Reduce("local", stats.Std),
		Target:    target,
	}
}

// Figure14PrivateTxShare computes the daily share of included transactions
// that never appeared in the public mempool, split by PBS class.
func (a *Analysis) scanFigure14PrivateTxShare() ValueSplit {
	g := stats.NewGrouped()
	for _, st := range a.stats {
		if st.TotalTxs == 0 {
			continue
		}
		label := "local"
		if st.PBS {
			label = "pbs"
		}
		g.Add(st.Day, label, float64(st.PrivateTxs)/float64(st.TotalTxs))
	}
	return ValueSplit{
		PBS:   g.Reduce("pbs", stats.Mean),
		Local: g.Reduce("local", stats.Mean),
	}
}

// Figure15MEVPerBlock computes the daily mean count of MEV transactions per
// block, split by PBS class.
func (a *Analysis) scanFigure15MEVPerBlock() ValueSplit {
	return a.mevCountSplit(func(st *BlockStat) float64 { return float64(st.MEVTxs) })
}

// Figure16MEVValueShare computes the daily mean share of block value
// attributable to MEV transactions.
func (a *Analysis) scanFigure16MEVValueShare() ValueSplit {
	return a.mevCountSplit(func(st *BlockStat) float64 { return st.MEVValueShare })
}

// Figure20To22MEVKind computes the per-kind daily mean counts (Appendix D).
func (a *Analysis) scanFigure20To22MEVKind(kind mev.Kind) ValueSplit {
	return a.mevCountSplit(func(st *BlockStat) float64 {
		switch kind {
		case mev.KindSandwich:
			return float64(st.Sandwiches)
		case mev.KindArbitrage:
			return float64(st.Arbitrages)
		default:
			return float64(st.Liquidations)
		}
	})
}

func (a *Analysis) mevCountSplit(metric func(*BlockStat) float64) ValueSplit {
	g := stats.NewGrouped()
	for _, st := range a.stats {
		label := "local"
		if st.PBS {
			label = "pbs"
		}
		g.Add(st.Day, label, metric(st))
	}
	return ValueSplit{
		PBS:   g.Reduce("pbs", stats.Mean),
		Local: g.Reduce("local", stats.Mean),
	}
}

// Figure17CensoringShare computes the daily share of PBS blocks delivered
// by relays that announce OFAC compliance. Fractional attribution follows
// Figure 5's rule.
func (a *Analysis) scanFigure17CensoringShare() stats.Series {
	compliant := map[string]bool{}
	for _, r := range a.ds.Relays {
		compliant[r.Name] = r.OFACCompliant
	}
	g := stats.NewGrouped()
	for _, st := range a.stats {
		if !st.PBS || len(st.RelayClaims) == 0 {
			continue
		}
		frac := 1.0 / float64(len(st.RelayClaims))
		for _, r := range st.RelayClaims {
			label := "open"
			if compliant[r] {
				label = "censoring"
			}
			g.Add(st.Day, label, frac)
		}
	}
	return g.ShareOfDay("censoring")
}

// Figure18SanctionedShare computes the daily share of blocks containing
// non-OFAC-compliant transactions, split by PBS class.
func (a *Analysis) scanFigure18SanctionedShare() ValueSplit {
	g := stats.NewGrouped()
	for _, st := range a.stats {
		label := "local"
		if st.PBS {
			label = "pbs"
		}
		v := 0.0
		if st.Sanctioned {
			v = 1
		}
		g.Add(st.Day, label, v)
	}
	return ValueSplit{
		PBS:   g.Reduce("pbs", stats.Mean),
		Local: g.Reduce("local", stats.Mean),
	}
}

// ProfitSplit is Appendix C's daily builder/proposer split of PBS block
// value. Shares are of the day's total PBS value; the builder share can be
// negative on subsidy-heavy days.
type ProfitSplit struct {
	BuilderShare  stats.Series
	ProposerShare stats.Series
}

// scanFigure19ProfitSplit is the sequential full-scan path for Figure 19.
func (a *Analysis) scanFigure19ProfitSplit() ProfitSplit {
	type agg struct{ value, payment float64 }
	days := map[int]*agg{}
	minDay, maxDay := math.MaxInt32, -1
	for _, st := range a.stats {
		if !st.PBS {
			continue
		}
		d := st.Day
		if days[d] == nil {
			days[d] = &agg{}
		}
		days[d].value += types.ToEther(st.Value)
		days[d].payment += types.ToEther(st.Payment)
		if d < minDay {
			minDay = d
		}
		if d > maxDay {
			maxDay = d
		}
	}
	if maxDay < 0 {
		return ProfitSplit{}
	}
	builderS := stats.Series{Start: minDay, Values: make([]float64, maxDay-minDay+1)}
	proposerS := stats.Series{Start: minDay, Values: make([]float64, maxDay-minDay+1)}
	for i := range builderS.Values {
		day, ok := days[minDay+i]
		if !ok || day.value == 0 {
			builderS.Values[i] = math.NaN()
			proposerS.Values[i] = math.NaN()
			continue
		}
		proposerS.Values[i] = day.payment / day.value
		builderS.Values[i] = 1 - day.payment/day.value
	}
	return ProfitSplit{BuilderShare: builderS, ProposerShare: proposerS}
}

// CoverageReport is the Section 4 classifier-coverage measurement: among
// PBS blocks, the share claimed by relays, the share showing the payment
// convention, and — for payment-less relay-claimed blocks — the share where
// builder and proposer fee recipients coincide.
type CoverageReport struct {
	PBSBlocks             int
	RelayClaimedShare     float64
	PaymentShare          float64
	NoPaymentSelfBuilt    float64
	MultiRelayClaimsShare float64
}

// scanClassifierCoverage is the sequential full-scan coverage measurement.
func (a *Analysis) scanClassifierCoverage() CoverageReport {
	var rep CoverageReport
	noPayment, selfBuilt, multi := 0, 0, 0
	claimed, paid := 0, 0
	for _, st := range a.stats {
		if !st.PBS {
			continue
		}
		rep.PBSBlocks++
		if len(st.RelayClaims) > 0 {
			claimed++
		}
		if len(st.RelayClaims) > 1 {
			multi++
		}
		if st.PaymentDetected {
			paid++
		} else {
			noPayment++
			// Builder == proposer: the fee recipient kept the whole value.
			selfBuilt++
		}
	}
	if rep.PBSBlocks > 0 {
		rep.RelayClaimedShare = float64(claimed) / float64(rep.PBSBlocks)
		rep.PaymentShare = float64(paid) / float64(rep.PBSBlocks)
		rep.MultiRelayClaimsShare = float64(multi) / float64(rep.PBSBlocks)
	}
	if noPayment > 0 {
		rep.NoPaymentSelfBuilt = float64(selfBuilt) / float64(noPayment)
	}
	return rep
}

// ConcentrationComparison contrasts HHI with the Gini coefficient for the
// relay market, the methodological remark Section 4.1 makes: Gini measures
// inequality among incumbents, HHI also accounts for how many players there
// are, which is why the paper reports HHI.
type ConcentrationComparison struct {
	HHI  stats.Series
	Gini stats.Series
}

// scanRelayConcentration computes both daily measures over relay block
// counts. It stays a chain-order scan on both paths: the per-day relay map
// accumulation is the definition of the measure.
func (a *Analysis) scanRelayConcentration() ConcentrationComparison {
	perDay := map[int]map[string]float64{}
	minDay, maxDay := math.MaxInt32, -1
	for _, st := range a.stats {
		if len(st.RelayClaims) == 0 {
			continue
		}
		if perDay[st.Day] == nil {
			perDay[st.Day] = map[string]float64{}
		}
		frac := 1.0 / float64(len(st.RelayClaims))
		for _, r := range st.RelayClaims {
			perDay[st.Day][r] += frac
		}
		if st.Day < minDay {
			minDay = st.Day
		}
		if st.Day > maxDay {
			maxDay = st.Day
		}
	}
	if maxDay < 0 {
		return ConcentrationComparison{}
	}
	hhi := stats.Series{Start: minDay, Values: make([]float64, maxDay-minDay+1)}
	gini := stats.Series{Start: minDay, Values: make([]float64, maxDay-minDay+1)}
	for i := range hhi.Values {
		day := perDay[minDay+i]
		if len(day) == 0 {
			hhi.Values[i] = math.NaN()
			gini.Values[i] = math.NaN()
			continue
		}
		sizes := make([]float64, 0, len(day))
		for _, v := range day {
			sizes = append(sizes, v)
		}
		hhi.Values[i] = stats.HHI(sizes)
		gini.Values[i] = stats.Gini(sizes)
	}
	return ConcentrationComparison{HHI: hhi, Gini: gini}
}
