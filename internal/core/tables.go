package core

import (
	"sort"
	"time"

	"github.com/ethpbs/pbslab/internal/mev"
	"github.com/ethpbs/pbslab/internal/types"
)

// RelayTrustRow is one relay's line in Table 4: delivered vs promised value
// and sanctioned-block counts.
type RelayTrustRow struct {
	Relay string
	// OFACCompliant marks the italicized rows.
	OFACCompliant bool
	// DeliveredETH is the on-chain value proposers actually received from
	// the relay's blocks.
	DeliveredETH float64
	// PromisedETH is the value the relay's data API announced.
	PromisedETH float64
	// ShareDelivered is DeliveredETH / PromisedETH (1 for an honest relay).
	ShareDelivered float64
	// OverPromisedBlockShare is the fraction of the relay's blocks whose
	// promise exceeded delivery.
	OverPromisedBlockShare float64
	// Blocks is the relay's delivered-block count (fractional attribution
	// is NOT applied here; the paper's Table 4 counts full blocks).
	Blocks int
	// SanctionedBlocks contain non-OFAC-compliant transactions.
	SanctionedBlocks int
	// SanctionedShare is SanctionedBlocks / Blocks.
	SanctionedShare float64
}

// Table4RelayTrust audits every relay: promised vs delivered value and
// censorship gaps. Totals are returned as a synthetic "PBS" row, matching
// the paper's last line.
func (a *Analysis) scanTable4RelayTrust() ([]RelayTrustRow, RelayTrustRow) {
	byHash := a.byHash

	rows := map[string]*RelayTrustRow{}
	for _, r := range a.ds.Relays {
		row := &RelayTrustRow{Relay: r.Name, OFACCompliant: r.OFACCompliant}
		rows[r.Name] = row
		for _, tr := range r.Delivered {
			st, ok := byHash[tr.BlockHash]
			if !ok {
				continue // delivered but never landed on chain
			}
			promised := types.ToEther(tr.Value)
			delivered := types.ToEther(st.Payment)
			row.PromisedETH += promised
			row.DeliveredETH += delivered
			row.Blocks++
			if promised > delivered+1e-12 {
				row.OverPromisedBlockShare++ // count; normalized below
			}
			if st.Sanctioned {
				row.SanctionedBlocks++
			}
		}
	}

	var total RelayTrustRow
	total.Relay = "PBS"
	// The total row counts each chain block once, not per claiming relay.
	seen := map[types.Hash]bool{}
	for _, st := range a.stats {
		if !st.PBS || len(st.RelayClaims) == 0 || seen[st.Block.Hash] {
			continue
		}
		seen[st.Block.Hash] = true
		promised := types.ToEther(st.Promised)
		delivered := types.ToEther(st.Payment)
		total.PromisedETH += promised
		total.DeliveredETH += delivered
		total.Blocks++
		if promised > delivered+1e-12 {
			total.OverPromisedBlockShare++
		}
		if st.Sanctioned {
			total.SanctionedBlocks++
		}
	}

	finish := func(row *RelayTrustRow) {
		if row.PromisedETH > 0 {
			row.ShareDelivered = row.DeliveredETH / row.PromisedETH
		} else {
			row.ShareDelivered = 1
		}
		if row.Blocks > 0 {
			row.OverPromisedBlockShare /= float64(row.Blocks)
			row.SanctionedShare = float64(row.SanctionedBlocks) / float64(row.Blocks)
		}
	}

	out := make([]RelayTrustRow, 0, len(rows))
	for _, r := range a.ds.Relays {
		row := rows[r.Name]
		finish(row)
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Relay < out[j].Relay })
	finish(&total)
	return out, total
}

// RelayPolicyRow is one line of Tables 2 and 3.
type RelayPolicyRow struct {
	Relay         string
	Endpoint      string
	Fork          string
	BuilderAccess string
	OFACCompliant bool
	MEVFilter     bool
	Validators    int
}

// Tables2And3Relays reproduces the relay registry and policy matrix.
func (a *Analysis) scanTables2And3Relays() []RelayPolicyRow {
	out := make([]RelayPolicyRow, 0, len(a.ds.Relays))
	for _, r := range a.ds.Relays {
		out = append(out, RelayPolicyRow{
			Relay:         r.Name,
			Endpoint:      r.Endpoint,
			Fork:          r.Fork,
			BuilderAccess: r.BuilderAccess,
			OFACCompliant: r.OFACCompliant,
			MEVFilter:     r.MEVFilter,
			Validators:    r.ValidatorCount,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Relay < out[j].Relay })
	return out
}

// EthicalFilterGap counts sandwich attacks that landed in blocks delivered
// by a relay that advertises front-running filtering (Section 5.4's 2,002
// sandwiches through bloXroute Ethical).
func (a *Analysis) scanEthicalFilterGap() map[string]int {
	filtering := map[string]bool{}
	for _, r := range a.ds.Relays {
		if r.MEVFilter {
			filtering[r.Name] = true
		}
	}
	out := map[string]int{}
	for _, st := range a.stats {
		if st.Sandwiches == 0 {
			continue
		}
		for _, name := range st.RelayClaims {
			if filtering[name] {
				out[name] += st.Sandwiches
			}
		}
	}
	return out
}

// LagGapRow summarizes censorship gaps around one OFAC list update for the
// compliant relays (Section 6: gaps cluster after updates).
type LagGapRow struct {
	UpdateDate time.Time
	// WindowDays is the post-update observation window.
	WindowDays int
	// SanctionedInWindow counts sanctioned blocks delivered by compliant
	// relays within the window.
	SanctionedInWindow int
	// SanctionedOutside counts sanctioned compliant-relay blocks per day
	// outside any update window (the baseline rate), normalized.
	BaselinePerDay float64
	// WindowPerDay is the in-window daily rate.
	WindowPerDay float64
}

// OFACUpdateLag measures whether compliant-relay censorship gaps
// concentrate after sanctions-list updates.
func (a *Analysis) scanOFACUpdateLag(windowDays int) []LagGapRow {
	compliant := map[string]bool{}
	for _, r := range a.ds.Relays {
		compliant[r.Name] = r.OFACCompliant
	}
	updates := a.ds.Sanctions.UpdateDates()

	inWindow := func(t time.Time, update time.Time) bool {
		return !t.Before(update) && t.Before(update.AddDate(0, 0, windowDays))
	}
	inAnyWindow := func(t time.Time) bool {
		for _, u := range updates {
			if inWindow(t, u) {
				return true
			}
		}
		return false
	}

	// Baseline: sanctioned compliant blocks per day outside windows.
	outsideCount, outsideDays := 0, map[int]bool{}
	for _, st := range a.stats {
		fromCompliant := false
		for _, name := range st.RelayClaims {
			if compliant[name] {
				fromCompliant = true
			}
		}
		if !fromCompliant {
			continue
		}
		if inAnyWindow(st.Block.Time) {
			continue
		}
		outsideDays[st.Day] = true
		if st.Sanctioned {
			outsideCount++
		}
	}
	baseline := 0.0
	if len(outsideDays) > 0 {
		baseline = float64(outsideCount) / float64(len(outsideDays))
	}

	var out []LagGapRow
	for _, u := range updates {
		if u.Before(a.ds.Start.AddDate(0, 0, -1)) {
			continue // pre-window designations have no lag to observe
		}
		row := LagGapRow{UpdateDate: u, WindowDays: windowDays, BaselinePerDay: baseline}
		for _, st := range a.stats {
			if !st.Sanctioned || !inWindow(st.Block.Time, u) {
				continue
			}
			for _, name := range st.RelayClaims {
				if compliant[name] {
					row.SanctionedInWindow++
					break
				}
			}
		}
		row.WindowPerDay = float64(row.SanctionedInWindow) / float64(windowDays)
		out = append(out, row)
	}
	return out
}

// MEVTotals counts union labels per kind (the Appendix D headline totals).
func (a *Analysis) scanMEVTotals() map[mev.Kind]int {
	out := map[mev.Kind]int{}
	for _, l := range a.ds.MEVLabels {
		out[l.Kind]++
	}
	return out
}
