package core_test

// Golden byte-identity test for the out-of-core path: an analysis built by
// streaming a chunked on-disk corpus one day at a time must render every
// artifact byte-for-byte identically to the in-memory analysis of the same
// dataset (DESIGN.md §11). Any drift in the per-day merge, the streamed
// inclusion-delay accumulation, or the stripped-block bookkeeping shows up
// here as a diff.

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"github.com/ethpbs/pbslab/internal/core"
	"github.com/ethpbs/pbslab/internal/dsio"
	"github.com/ethpbs/pbslab/internal/report"
)

func TestStreamingMatchesInMemoryGolden(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			res := goldenDataset(t, seed, 4)
			labels := res.World.BuilderLabels()

			dir := t.TempDir()
			if err := dsio.WriteDays(dir, res.Dataset, labels); err != nil {
				t.Fatal(err)
			}
			r, err := dsio.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if rep, err := core.ValidateStream(r); err != nil {
				t.Fatal(err)
			} else if !rep.OK() {
				t.Fatalf("streamed validation: %d violation(s), first: %s",
					len(rep.Violations), rep.Violations[0])
			}

			mem := core.New(res.Dataset, core.WithBuilderLabels(labels), core.WithWorkers(4))
			streamed, err := core.NewStreaming(context.Background(), r, core.WithWorkers(4))
			if err != nil {
				t.Fatal(err)
			}

			if got, want := streamed.Counts(), res.Dataset.Count(); !reflect.DeepEqual(got, want) {
				t.Errorf("streamed counts differ:\n%+v\nvs\n%+v", got, want)
			}

			want := report.RenderAll(mem, 4)
			got := report.RenderAll(streamed, 4)
			if len(want) != len(got) {
				t.Fatalf("artifact count: in-memory %d, streamed %d", len(want), len(got))
			}
			for i := range want {
				if want[i].Name != got[i].Name {
					t.Fatalf("artifact %d: name %q vs %q", i, want[i].Name, got[i].Name)
				}
				if !bytes.Equal(want[i].Data, got[i].Data) {
					t.Errorf("%s: streamed render differs from in-memory (%d vs %d bytes)\n--- in-memory ---\n%s\n--- streamed ---\n%s",
						want[i].Name, len(want[i].Data), len(got[i].Data),
						firstDiffContext(want[i].Data, got[i].Data), firstDiffContext(got[i].Data, want[i].Data))
				}
			}
		})
	}
}
