package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"github.com/ethpbs/pbslab/internal/dataset"
	"github.com/ethpbs/pbslab/internal/mev"
	"github.com/ethpbs/pbslab/internal/stats"
	"github.com/ethpbs/pbslab/internal/types"
)

// DaySource streams a chunked corpus: the blocks-free common section once,
// then each day's blocks on demand. dsio.Reader implements it; tests use
// in-memory sources. OpenDay must return days in chain order when called
// with ascending indexes — the contract the chunked layout guarantees.
type DaySource interface {
	// Common returns the corpus shell (ds.Blocks is nil) and the builder
	// labels the corpus was saved with.
	Common() (*dataset.Dataset, map[types.Address]string, error)
	// Days returns the number of day segments.
	Days() int
	// OpenDay returns day i's blocks in chain order.
	OpenDay(day int) ([]*dataset.Block, error)
}

// NewStreaming builds an Analysis from a streamed corpus without ever
// holding more than one day of transaction-level data: each day is
// decoded, classified, folded into the delay/count accumulators, and then
// stripped to its header before the next day loads. The resulting
// Analysis answers every figure and table byte-identically to the
// in-memory path — the per-day pass visits blocks in exactly the chain
// order the sharded passes of New reduce in.
//
// The legacy sequential scan path is unavailable here (its per-figure
// scans re-read transactions that are no longer resident), so combining
// NewStreaming with WithSequential is an error.
func NewStreaming(ctx context.Context, src DaySource, opts ...Option) (*Analysis, error) {
	common, srcLabels, err := src.Common()
	if err != nil {
		return nil, fmt.Errorf("core: common section: %w", err)
	}
	a := &Analysis{
		ds:       common,
		byNum:    map[uint64]*BlockStat{},
		byHash:   map[types.Hash]*BlockStat{},
		labels:   map[types.Address]string{},
		clusters: map[types.Address]*Cluster{},
		workers:  runtime.GOMAXPROCS(0),
	}
	for k, v := range srcLabels {
		a.labels[k] = v
	}
	for _, opt := range opts {
		opt(a)
	}
	if a.sequential {
		return nil, fmt.Errorf("core: streaming build has no sequential path: the full-scan figures need resident transactions")
	}

	claims := indexRelayClaims(common)
	mevByBlock := indexMEV(common)

	// Block-level tallies accumulate here; the common shell's own Count()
	// supplies the label/arrival/relay/sanction tallies.
	counts := common.Count()
	var delayRegular, delaySanctioned []float64

	for day := 0; day < src.Days(); day++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		blocks, err := src.OpenDay(day)
		if err != nil {
			return nil, fmt.Errorf("core: day %d: %w", day, err)
		}
		dayStats := make([]*BlockStat, len(blocks))
		shards := shardRanges(len(blocks), a.workers)
		err = stats.ParallelDaysErr(ctx, len(shards), a.workers, func(s int) error {
			for i := shards[s][0]; i < shards[s][1]; i++ {
				b := blocks[i]
				dayStats[i] = a.classify(b, claims[b.Hash], mevByBlock[b.Number])
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("core: classify day %d: %w", day, err)
		}
		// The sequential tail of the day: chain-order accumulation (delay
		// samples concatenate exactly as idxInclusionDelay's shards do),
		// then the strip that releases the day's transaction payload.
		for _, st := range dayStats {
			b := st.Block
			counts.Blocks++
			counts.Transactions += len(b.Txs)
			counts.Logs += b.LogCount()
			counts.Traces += len(b.Traces)
			for _, tx := range b.Txs {
				obs, ok := common.Arrivals[tx.Hash()]
				if !ok {
					continue
				}
				first, seen := obs.FirstSeen()
				if !seen || first.After(b.Time) {
					continue
				}
				wait := b.Time.Sub(first).Seconds()
				if common.Sanctions.IsSanctioned(tx.From, b.Time) ||
					common.Sanctions.IsSanctioned(tx.To, b.Time) {
					delaySanctioned = append(delaySanctioned, wait)
				} else {
					delayRegular = append(delayRegular, wait)
				}
			}
			st.Block = stripBlock(b)
			a.stats = append(a.stats, st)
			a.byNum[st.Block.Number] = st
			a.byHash[st.Block.Hash] = st
		}
	}
	a.streamCounts = &counts

	a.buildClusters()
	for _, st := range a.stats {
		if st.PBS {
			if c, ok := a.clusters[st.Block.FeeRecipient]; ok {
				st.BuilderCluster = c.Name
				c.Blocks++
			}
		}
	}

	delay := DelayReport{
		Regular:    stats.BoxOf(delayRegular),
		Sanctioned: stats.BoxOf(delaySanctioned),
	}
	if delay.Regular.Mean > 0 {
		delay.MeanRatio = delay.Sanctioned.Mean / delay.Regular.Mean
	}
	a.preDelay = &delay

	idx, err := buildIndex(ctx, a)
	if err != nil {
		return nil, fmt.Errorf("core: index: %w", err)
	}
	a.idx = idx
	return a, nil
}

// stripBlock returns a header-only copy of b: every field the
// post-classification pipeline reads (index build, scan tables, identity
// clustering) survives, while the transaction-level payload (Txs,
// Receipts, Traces) is dropped so resident memory scales with block count
// rather than transaction volume.
func stripBlock(b *dataset.Block) *dataset.Block {
	return &dataset.Block{
		Number: b.Number, Hash: b.Hash, Slot: b.Slot, Time: b.Time,
		FeeRecipient: b.FeeRecipient, GasUsed: b.GasUsed, GasLimit: b.GasLimit,
		BaseFee: b.BaseFee, Burned: b.Burned, Tips: b.Tips,
	}
}

// ValidateStream checks the invariants of Validate over a streamed corpus,
// holding at most one day of blocks plus header-level maps. One report
// detail degrades: a mislabeled MEV transaction is reported as "not in
// block N" without naming the block that does contain it — the global
// transaction map Validate consults is exactly what out-of-core rules out.
func ValidateStream(src DaySource) (ValidationReport, error) {
	common, _, err := src.Common()
	if err != nil {
		return ValidationReport{}, fmt.Errorf("core: common section: %w", err)
	}
	var rep ValidationReport
	quarantine := map[uint64]bool{}
	flag := func(kind string, block uint64, format string, args ...any) {
		rep.Violations = append(rep.Violations, Violation{
			Kind: kind, Block: block, Detail: fmt.Sprintf(format, args...),
		})
		if block != 0 {
			quarantine[block] = true
		}
	}

	labelsByBlock := map[uint64][]mev.Label{}
	for _, l := range common.MEVLabels {
		labelsByBlock[l.Block] = append(labelsByBlock[l.Block], l)
	}

	byHash := make(map[types.Hash]uint64)
	var prev *dataset.Block
	for day := 0; day < src.Days(); day++ {
		blocks, err := src.OpenDay(day)
		if err != nil {
			return ValidationReport{}, fmt.Errorf("core: day %d: %w", day, err)
		}
		for _, b := range blocks {
			byHash[b.Hash] = b.Number

			if prev != nil {
				if b.Number != prev.Number+1 {
					flag(VioOrder, b.Number, "number %d follows %d (want %d)", b.Number, prev.Number, prev.Number+1)
				}
				if b.Slot <= prev.Slot {
					flag(VioOrder, b.Number, "slot %d not after %d", b.Slot, prev.Slot)
				}
				if !b.Time.After(prev.Time) {
					flag(VioOrder, b.Number, "timestamp %s not after %s", b.Time, prev.Time)
				}
			}
			if b.Time.Before(common.Start) || b.Time.After(common.End) {
				flag(VioWindow, b.Number, "timestamp %s outside window [%s, %s]",
					b.Time, common.Start, common.End)
			}
			validateConservation(b, flag)

			if ls := labelsByBlock[b.Number]; len(ls) > 0 {
				txs := make(map[types.Hash]bool, len(b.Txs))
				for _, tx := range b.Txs {
					txs[tx.Hash()] = true
				}
				for _, l := range ls {
					for _, h := range l.Txs {
						if !txs[h] {
							flag(VioLabel, l.Block, "%s label tx %s not in block %d", l.Kind, h, b.Number)
						}
					}
				}
				delete(labelsByBlock, b.Number)
			}

			prev = stripBlock(b)
		}
	}

	// Whatever labels were never claimed by a block reference blocks the
	// corpus does not contain; report them in block order for determinism.
	missing := make([]uint64, 0, len(labelsByBlock))
	for n := range labelsByBlock {
		missing = append(missing, n)
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	for _, n := range missing {
		for _, l := range labelsByBlock[n] {
			flag(VioLabel, l.Block, "%s label references unknown block", l.Kind)
		}
	}

	for _, r := range common.Relays {
		for _, tr := range r.Delivered {
			num, ok := byHash[tr.BlockHash]
			if !ok {
				flag(VioRelay, tr.BlockNumber, "relay %s delivered unknown block %s", r.Name, tr.BlockHash)
				continue
			}
			if tr.BlockNumber != 0 && tr.BlockNumber != num {
				flag(VioRelay, num, "relay %s trace says number %d", r.Name, tr.BlockNumber)
			}
		}
	}

	rep.Quarantined = make([]uint64, 0, len(quarantine))
	for n := range quarantine {
		rep.Quarantined = append(rep.Quarantined, n)
	}
	sort.Slice(rep.Quarantined, func(i, j int) bool { return rep.Quarantined[i] < rep.Quarantined[j] })
	return rep, nil
}
