// Package core is the paper's primary contribution: the measurement
// pipeline that classifies blocks as PBS or locally built, clusters builder
// identities, audits relays against their promises, and computes every
// figure and table of the evaluation (Sections 4-6).
//
// The pipeline consumes only dataset.Dataset — blocks, receipts, traces,
// MEV labels, mempool observations, relay crawls and the sanctions list.
// It never reads simulator ground truth; classifier quality is itself a
// measured quantity (the paper's 99.6% / 92% coverage figures).
//
// Structurally the package is a parallel, single-pass analysis engine
// (DESIGN.md §6). New runs two sharded stages: block classification into
// chain-ordered BlockStats, then one fused pass that fills a per-day Index
// (stats.DayAgg aggregates, per-cluster samples, coverage counters, the
// inclusion-delay report). Every public figure/table method answers from
// the index and memoizes its result, so PrintAll + WriteAll compute each
// artifact exactly once. The legacy scan-per-figure path is kept behind
// WithSequential as the baseline the engine is measured against; for a
// fixed dataset both paths produce byte-identical artifacts for any worker
// count — shards cut at day boundaries and merge in chain order, so every
// floating-point reduction associates exactly as a sequential pass. The
// golden test (TestParallelMatchesSequentialGolden) enforces this, and
// WithoutMemo/WithWorkers tune benchmarking and pool width.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/dataset"
	"github.com/ethpbs/pbslab/internal/mev"
	"github.com/ethpbs/pbslab/internal/stats"
	"github.com/ethpbs/pbslab/internal/types"
	"github.com/ethpbs/pbslab/internal/u256"
)

// BlockStat is the per-block result of the classification pass.
type BlockStat struct {
	Block *dataset.Block
	Day   int

	// PBS is the paper's classifier verdict: claimed by a relay OR showing
	// the builder→proposer payment convention.
	PBS bool
	// RelayClaims lists relays whose data API claims the block; the block
	// is attributed 1/len to each (Figure 5).
	RelayClaims []string
	// PaymentDetected reports the last-transaction payment convention.
	PaymentDetected bool
	// Payment is the on-chain proposer payment (zero when not detected).
	Payment types.Wei
	// PaymentTo is the recipient of the detected payment.
	PaymentTo types.Address

	// Value is the paper's block value: priority fees plus direct
	// transfers to the fee recipient.
	Value types.Wei
	// Burned is the base-fee total (Figure 3).
	Burned types.Wei
	// DirectTransfers is the direct-transfer component of Value.
	DirectTransfers types.Wei

	// BuilderPubkey is the winning builder per relay data (PBS only).
	BuilderPubkey types.PubKey
	// BuilderCluster is the fee-recipient-based identity cluster.
	BuilderCluster string
	// Promised is the relay-announced value (max across claiming relays).
	Promised types.Wei

	// PrivateTxs counts included transactions never seen by any mempool
	// observer before inclusion; TotalTxs excludes the payment transaction.
	PrivateTxs int
	TotalTxs   int

	// MEV counts per class (extractor transactions, Figures 15, 20-22).
	MEVTxs        int
	Sandwiches    int
	Arbitrages    int
	Liquidations  int
	MEVValueShare float64 // fraction of Value attributable to MEV txs

	// Sanctioned reports whether any transaction moves value from/to an
	// address sanctioned at block time (Figure 18).
	Sanctioned bool
}

// ProposerProfit returns what the proposer earned from the block: the
// payment for PBS blocks, the whole value for local blocks.
func (b *BlockStat) ProposerProfit() types.Wei {
	if b.PBS {
		return b.Payment
	}
	return b.Value
}

// BuilderProfitETH returns the builder's take in ETH (possibly negative for
// subsidized blocks). Meaningful for PBS blocks only.
func (b *BlockStat) BuilderProfitETH() float64 {
	return types.ToEther(b.Value) - types.ToEther(b.Payment)
}

// Cluster is one builder identity: all pubkeys paying out to the same fee
// recipient address (Table 5 / Appendix B).
type Cluster struct {
	// Name is the display label: a provided hint or a derived address tag.
	Name string
	// FeeRecipient is the clustering key.
	FeeRecipient types.Address
	// Pubkeys are the builder keys observed paying to the recipient.
	Pubkeys []types.PubKey
	// Blocks is the cluster's block count.
	Blocks int
}

// Analysis is the classified dataset with precomputed per-block statistics.
// All public figure/table methods are safe for concurrent use: they read the
// immutable classification and the single-pass Index built by New, and
// results are memoized behind sync.Once (unless WithoutMemo is set).
type Analysis struct {
	ds     *dataset.Dataset
	stats  []*BlockStat
	byNum  map[uint64]*BlockStat
	byHash map[types.Hash]*BlockStat
	labels map[types.Address]string

	clusters map[types.Address]*Cluster

	workers    int
	sequential bool
	noMemo     bool

	// preDelay, when non-nil, is the inclusion-delay report the streaming
	// build accumulated during its one transaction-level pass; buildIndex
	// uses it instead of re-walking transactions (which a streamed corpus
	// no longer holds).
	preDelay *DelayReport
	// streamCounts, when non-nil, replaces the dataset's memoized Count()
	// walk for the same reason.
	streamCounts *dataset.Counts

	idx  *Index
	memo figMemo
}

// Counts returns the corpus Table 1 inventory. The in-memory path defers
// to the dataset's memoized walk; the streaming build accumulated the
// block-level tallies during its pass, since the transactions are no
// longer resident afterwards.
func (a *Analysis) Counts() dataset.Counts {
	if a.streamCounts == nil {
		return a.ds.Count()
	}
	c := *a.streamCounts
	c.MEVBySource = make(map[string]int, len(a.streamCounts.MEVBySource))
	for name, n := range a.streamCounts.MEVBySource {
		c.MEVBySource[name] = n
	}
	return c
}

// Option configures an Analysis.
type Option func(*Analysis)

// WithBuilderLabels supplies display names for builder fee recipients (the
// equivalent of Etherscan's public labels the paper used).
func WithBuilderLabels(labels map[types.Address]string) Option {
	return func(a *Analysis) {
		for k, v := range labels {
			a.labels[k] = v
		}
	}
}

// WithWorkers bounds the worker pool used for classification, the index
// build, and per-day reductions. Values below 1 are clamped to 1. The
// default is runtime.GOMAXPROCS(0).
func WithWorkers(n int) Option {
	return func(a *Analysis) {
		if n < 1 {
			n = 1
		}
		a.workers = n
	}
}

// WithSequential selects the legacy full-scan analysis path: no index, no
// worker pool — every figure re-scans the corpus exactly as the original
// sequential implementation did. It is the reference the parallel engine is
// tested against (byte-identical output) and the baseline the benchmarks
// compare with.
func WithSequential() Option {
	return func(a *Analysis) { a.sequential = true }
}

// WithoutMemo disables result memoization, so every figure/table call
// recomputes from scratch. Benchmarks use this to measure steady-state cost
// rather than a single cached lookup.
func WithoutMemo() Option {
	return func(a *Analysis) { a.noMemo = true }
}

// New runs the classification pass over the dataset. Blocks are classified
// in parallel (each slot of the stats slice is owned by one worker), then
// the single-pass Index is built over day-aligned shards and merged in
// shard order, which keeps every float accumulation in chain order.
//
// A worker panic surfaces as a panic on the caller's goroutine (wrapped in
// *stats.WorkerPanicError) rather than crashing the process from a pool
// goroutine; use NewWithContext to receive it as an error instead.
func New(ds *dataset.Dataset, opts ...Option) *Analysis {
	a, err := NewWithContext(context.Background(), ds, opts...)
	if err != nil {
		// Background contexts never cancel, so the only possible error is a
		// recovered worker panic: re-raise it to keep New's contract.
		panic(err)
	}
	return a
}

// NewWithContext is New under a context: the classification and index
// passes stop early when ctx is cancelled, and a panic inside a worker
// comes back as a *stats.WorkerPanicError instead of killing the process.
func NewWithContext(ctx context.Context, ds *dataset.Dataset, opts ...Option) (*Analysis, error) {
	a := &Analysis{
		ds:       ds,
		byNum:    map[uint64]*BlockStat{},
		byHash:   map[types.Hash]*BlockStat{},
		labels:   map[types.Address]string{},
		clusters: map[types.Address]*Cluster{},
		workers:  runtime.GOMAXPROCS(0),
	}
	for _, opt := range opts {
		opt(a)
	}
	if a.sequential {
		a.workers = 1
	}

	claims := indexRelayClaims(ds)
	mevByBlock := indexMEV(ds)

	a.stats = make([]*BlockStat, len(ds.Blocks))
	shards := shardRanges(len(ds.Blocks), a.workers)
	err := stats.ParallelDaysErr(ctx, len(shards), a.workers, func(s int) error {
		for i := shards[s][0]; i < shards[s][1]; i++ {
			b := ds.Blocks[i]
			a.stats[i] = a.classify(b, claims[b.Hash], mevByBlock[b.Number])
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: classify: %w", err)
	}
	for _, st := range a.stats {
		a.byNum[st.Block.Number] = st
		a.byHash[st.Block.Hash] = st
	}
	a.buildClusters()
	for _, st := range a.stats {
		if st.PBS {
			if c, ok := a.clusters[st.Block.FeeRecipient]; ok {
				st.BuilderCluster = c.Name
				c.Blocks++
			}
		}
	}
	if !a.sequential {
		idx, err := buildIndex(ctx, a)
		if err != nil {
			return nil, fmt.Errorf("core: index: %w", err)
		}
		a.idx = idx
	}
	return a, nil
}

// Workers returns the analysis worker-pool size (1 when sequential).
func (a *Analysis) Workers() int { return a.workers }

// shardRanges splits [0, n) into at most k contiguous half-open ranges.
func shardRanges(n, k int) [][2]int {
	if k > n {
		k = n
	}
	if k <= 1 {
		return [][2]int{{0, n}}
	}
	out := make([][2]int, 0, k)
	start := 0
	for s := 1; s <= k && start < n; s++ {
		end := s * n / k
		if end <= start {
			continue
		}
		out = append(out, [2]int{start, end})
		start = end
	}
	return out
}

// Dataset returns the underlying corpus.
func (a *Analysis) Dataset() *dataset.Dataset { return a.ds }

// Blocks returns the per-block statistics in chain order.
func (a *Analysis) Blocks() []*BlockStat { return a.stats }

// ByNumber finds a block's statistics.
func (a *Analysis) ByNumber(n uint64) (*BlockStat, bool) {
	st, ok := a.byNum[n]
	return st, ok
}

// relayClaim is one relay's delivered record for a block.
type relayClaim struct {
	relay    string
	trace    relayTraceView
	promised types.Wei
}

type relayTraceView struct {
	builder types.PubKey
}

// indexRelayClaims joins delivered records to block hashes.
func indexRelayClaims(ds *dataset.Dataset) map[types.Hash][]relayClaim {
	out := map[types.Hash][]relayClaim{}
	for _, r := range ds.Relays {
		for _, tr := range r.Delivered {
			out[tr.BlockHash] = append(out[tr.BlockHash], relayClaim{
				relay:    r.Name,
				trace:    relayTraceView{builder: tr.BuilderPubkey},
				promised: tr.Value,
			})
		}
	}
	return out
}

// indexMEV groups union labels per block.
func indexMEV(ds *dataset.Dataset) map[uint64][]mev.Label {
	out := map[uint64][]mev.Label{}
	for _, l := range ds.MEVLabels {
		out[l.Block] = append(out[l.Block], l)
	}
	return out
}

// classify computes one block's statistics.
func (a *Analysis) classify(b *dataset.Block, claims []relayClaim, labels []mev.Label) *BlockStat {
	st := &BlockStat{Block: b, Day: a.ds.Day(b.Time)}

	// Relay claims (sorted for determinism).
	for _, c := range claims {
		st.RelayClaims = append(st.RelayClaims, c.relay)
		if c.promised.Gt(st.Promised) {
			st.Promised = c.promised
		}
		st.BuilderPubkey = c.trace.builder
	}
	sort.Strings(st.RelayClaims)

	// Payment convention: the final transaction, sent by the block's fee
	// recipient, transferring positive value.
	if n := len(b.Txs); n > 0 {
		last := b.Txs[n-1]
		if last.From == b.FeeRecipient && !last.Value.IsZero() && len(last.Data) == 0 {
			st.PaymentDetected = true
			st.Payment = last.Value
			st.PaymentTo = last.To
		}
	}
	st.PBS = len(st.RelayClaims) > 0 || st.PaymentDetected

	// Value decomposition (Figure 3): burned base fees, priority tips, and
	// internal transfers into the fee recipient. The proposer payment is
	// excluded from direct transfers — it is the value leaving the builder.
	st.Burned = b.Burned
	tips := b.Tips
	direct := u256.Zero
	for _, tr := range b.Traces {
		if tr.To != b.FeeRecipient {
			continue
		}
		direct = direct.Add(tr.Value)
	}
	st.DirectTransfers = direct
	st.Value = tips.Add(direct)

	// Private transactions: never observed by any vantage point before the
	// block's timestamp. The payment transaction is excluded (it exists
	// only inside the builder flow).
	paymentIdx := -1
	if st.PaymentDetected {
		paymentIdx = len(b.Txs) - 1
	}
	for i, tx := range b.Txs {
		if i == paymentIdx {
			continue
		}
		st.TotalTxs++
		obs, ok := a.ds.Arrivals[tx.Hash()]
		if !ok {
			st.PrivateTxs++
			continue
		}
		first, seen := obs.FirstSeen()
		if !seen || first.After(b.Time) {
			st.PrivateTxs++
		}
	}

	// MEV content.
	mevTxs := map[types.Hash]bool{}
	actors := map[types.Address]bool{}
	for _, l := range labels {
		switch l.Kind {
		case mev.KindSandwich:
			st.Sandwiches++
		case mev.KindArbitrage:
			st.Arbitrages++
		case mev.KindLiquidation:
			st.Liquidations++
		}
		for _, h := range l.Txs {
			mevTxs[h] = true
		}
		actors[l.Actor] = true
	}
	st.MEVTxs = len(mevTxs)
	if st.MEVTxs > 0 && !st.Value.IsZero() {
		st.MEVValueShare = mevValueShare(b, mevTxs, actors, st.Value)
	}

	// Sanctioned content: senders/recipients, traces and token transfers
	// checked against the list active at block time.
	st.Sanctioned = a.touchesSanctioned(b)

	return st
}

// mevValueShare computes the share of block value carried by MEV activity:
// the labeled transactions' tips and direct transfers, plus direct
// transfers from the extractor's other transactions in the block — bundles
// pay their coinbase bid through an adjacent transaction from the same
// actor, and that bid is MEV value (the paper attributes searcher payments
// to MEV the same way).
func mevValueShare(b *dataset.Block, mevTxs map[types.Hash]bool, actors map[types.Address]bool, value types.Wei) float64 {
	senderOf := map[types.Hash]types.Address{}
	for _, tx := range b.Txs {
		senderOf[tx.Hash()] = tx.From
	}
	isMEV := func(h types.Hash) bool {
		return mevTxs[h] || actors[senderOf[h]]
	}
	mevValue := u256.Zero
	for _, rcpt := range b.Receipts {
		if !isMEV(rcpt.TxHash) {
			continue
		}
		tip := rcpt.EffectiveGasPrice.SatSub(b.BaseFee).Mul64(rcpt.GasUsed)
		mevValue = mevValue.Add(tip)
	}
	for _, tr := range b.Traces {
		if tr.To == b.FeeRecipient && isMEV(tr.TxHash) {
			mevValue = mevValue.Add(tr.Value)
		}
	}
	share := types.ToEther(mevValue) / types.ToEther(value)
	if share > 1 {
		share = 1
	}
	return share
}

// touchesSanctioned mirrors the paper's scan: transaction endpoints, ETH
// traces, and token transfer logs against the active sanction set.
func (a *Analysis) touchesSanctioned(b *dataset.Block) bool {
	at := b.Time
	isBad := func(addr types.Address) bool {
		return a.ds.Sanctions.IsSanctioned(addr, at)
	}
	for _, tx := range b.Txs {
		if isBad(tx.From) || isBad(tx.To) {
			return true
		}
	}
	for _, tr := range b.Traces {
		if isBad(tr.From) || isBad(tr.To) {
			return true
		}
	}
	for _, rcpt := range b.Receipts {
		for _, lg := range rcpt.Logs {
			if len(lg.Topics) == 3 && lg.Topics[0] == transferTopic {
				if isBad(topicAddr(lg.Topics[1])) || isBad(topicAddr(lg.Topics[2])) {
					return true
				}
			}
		}
	}
	return false
}

// buildClusters groups builder pubkeys by the fee recipient of the blocks
// they delivered (Table 5's methodology).
func (a *Analysis) buildClusters() {
	seen := map[types.Address]map[types.PubKey]bool{}
	for _, st := range a.stats {
		if len(st.RelayClaims) == 0 {
			continue
		}
		fee := st.Block.FeeRecipient
		if seen[fee] == nil {
			seen[fee] = map[types.PubKey]bool{}
		}
		if st.BuilderPubkey != (types.PubKey{}) {
			seen[fee][st.BuilderPubkey] = true
		}
	}
	for fee, pubs := range seen {
		c := &Cluster{FeeRecipient: fee}
		if label, ok := a.labels[fee]; ok {
			c.Name = label
		} else {
			c.Name = "builder-" + fee.Hex()[:10]
		}
		for p := range pubs {
			c.Pubkeys = append(c.Pubkeys, p)
		}
		sort.Slice(c.Pubkeys, func(i, j int) bool {
			return c.Pubkeys[i].Hex() < c.Pubkeys[j].Hex()
		})
		a.clusters[fee] = c
	}
}

// sortedClusters orders the builder identity clusters, largest first.
func (a *Analysis) sortedClusters() []*Cluster {
	out := make([]*Cluster, 0, len(a.clusters))
	for _, c := range a.clusters {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Blocks != out[j].Blocks {
			return out[i].Blocks > out[j].Blocks
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Window returns the covered day span.
func (a *Analysis) Window() (start time.Time, days int) {
	return a.ds.Start, a.ds.Days()
}

// transferTopic is the public ERC-20 Transfer event signature; the analysis
// stands on the event ABI alone.
var transferTopic = crypto.Keccak256([]byte("Transfer(address,address,uint256)"))

// topicAddr recovers an address from a left-padded topic.
func topicAddr(h types.Hash) types.Address {
	var a types.Address
	copy(a[:], h[12:])
	return a
}
