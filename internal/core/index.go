package core

import (
	"context"
	"math"
	"sort"

	"github.com/ethpbs/pbslab/internal/stats"
	"github.com/ethpbs/pbslab/internal/types"
)

// Index is the single-pass analysis index: every per-day aggregate the
// figures and tables need, accumulated in ONE walk over the classified
// corpus instead of one walk per artifact. It is built by New over
// day-aligned shards (each worker owns a contiguous day range) and merged
// in shard order, so every running float sum sees samples in exactly the
// order the sequential scans add them — the foundation of the byte-identity
// guarantee against the legacy path.
//
// After construction the index is read-only; all figure methods can run
// concurrently against it.
type Index struct {
	payment      *stats.DayAgg // Figure 3: "base", "direct", "priority"
	pbs          *stats.DayAgg // Figure 4: "local", "pbs" block counts
	relayFrac    *stats.DayAgg // Figure 5: relays + "(none)", fractional
	relayHHI     *stats.DayAgg // Figure 6: relays, claimed blocks only
	builderHHI   *stats.DayAgg // Figure 6: clusters, attributed PBS blocks
	builderShare *stats.DayAgg // Figure 8: clusters + "(local)", "(unattributed)"
	value        *stats.DayAgg // Figure 9: block value, ETH
	profit       *stats.DayAgg // Figure 10: proposer profit (samples kept)
	gas          *stats.DayAgg // Figure 13: gas used (samples kept)
	priv         *stats.DayAgg // Figure 14: private-tx share
	mevCount     *stats.DayAgg // Figure 15: MEV txs per block
	mevShare     *stats.DayAgg // Figure 16: MEV value share
	sandwich     *stats.DayAgg // Figures 20-22 per kind
	arbitrage    *stats.DayAgg
	liquidation  *stats.DayAgg
	censor       *stats.DayAgg // Figure 17: "censoring", "open", fractional
	sanctioned   *stats.DayAgg // Figure 18: 0/1 per block
	split        *stats.DayAgg // Figure 19: "payment", "value" sums over PBS

	// Figures 11/12: per-cluster profit samples in chain order.
	builderSamples  map[string][]float64
	proposerSamples map[string][]float64
	clusterBlocks   map[string]int

	cov coverageCounts

	// Inclusion-delay report, precomputed during the build so the only
	// transaction-level render-time cost lives in the one-time pass.
	delay DelayReport

	// Cached group slots, identical across all shards (same constructor
	// shape). All local/pbs aggregates share one numbering.
	sBase, sDirect, sPriority int
	sLocal, sPBS              int
	sCensor, sOpen            int
	sPay, sVal                int
	sNone                     int
}

// coverageCounts are the raw Section 4 coverage tallies; shares are derived
// at report time with the same divisions the sequential scan performs.
type coverageCounts struct {
	pbs, claimed, multi, paid, noPayment, selfBuilt int
}

func (c coverageCounts) report() CoverageReport {
	rep := CoverageReport{PBSBlocks: c.pbs}
	if c.pbs > 0 {
		rep.RelayClaimedShare = float64(c.claimed) / float64(c.pbs)
		rep.PaymentShare = float64(c.paid) / float64(c.pbs)
		rep.MultiRelayClaimsShare = float64(c.multi) / float64(c.pbs)
	}
	if c.noPayment > 0 {
		rep.NoPaymentSelfBuilt = float64(c.selfBuilt) / float64(c.noPayment)
	}
	return rep
}

// newIndexShell allocates one (empty) index covering days [lo, hi]. Every
// shard builds its own shell with identical shape, so partials merge
// slot-for-slot.
func newIndexShell(lo, hi int, relayNames, clusterNames []string) *Index {
	localPBS := []string{"local", "pbs"}
	withNone := append([]string{"(none)"}, relayNames...)
	shareGroups := append([]string{"(local)", "(unattributed)"}, clusterNames...)
	ix := &Index{
		payment:      stats.NewDayAgg(lo, hi, false, "base", "direct", "priority"),
		pbs:          stats.NewDayAgg(lo, hi, false, localPBS...),
		relayFrac:    stats.NewDayAgg(lo, hi, false, withNone...),
		relayHHI:     stats.NewDayAgg(lo, hi, false, relayNames...),
		builderHHI:   stats.NewDayAgg(lo, hi, false, clusterNames...),
		builderShare: stats.NewDayAgg(lo, hi, false, shareGroups...),
		value:        stats.NewDayAgg(lo, hi, false, localPBS...),
		profit:       stats.NewDayAgg(lo, hi, true, localPBS...),
		gas:          stats.NewDayAgg(lo, hi, true, localPBS...),
		priv:         stats.NewDayAgg(lo, hi, false, localPBS...),
		mevCount:     stats.NewDayAgg(lo, hi, false, localPBS...),
		mevShare:     stats.NewDayAgg(lo, hi, false, localPBS...),
		sandwich:     stats.NewDayAgg(lo, hi, false, localPBS...),
		arbitrage:    stats.NewDayAgg(lo, hi, false, localPBS...),
		liquidation:  stats.NewDayAgg(lo, hi, false, localPBS...),
		censor:       stats.NewDayAgg(lo, hi, false, "censoring", "open"),
		sanctioned:   stats.NewDayAgg(lo, hi, false, localPBS...),
		split:        stats.NewDayAgg(lo, hi, false, "payment", "value"),

		builderSamples:  map[string][]float64{},
		proposerSamples: map[string][]float64{},
		clusterBlocks:   map[string]int{},
	}
	ix.sBase = ix.payment.GroupIndex("base")
	ix.sDirect = ix.payment.GroupIndex("direct")
	ix.sPriority = ix.payment.GroupIndex("priority")
	ix.sLocal = ix.pbs.GroupIndex("local")
	ix.sPBS = ix.pbs.GroupIndex("pbs")
	ix.sCensor = ix.censor.GroupIndex("censoring")
	ix.sOpen = ix.censor.GroupIndex("open")
	ix.sPay = ix.split.GroupIndex("payment")
	ix.sVal = ix.split.GroupIndex("value")
	ix.sNone = ix.relayFrac.GroupIndex("(none)")
	return ix
}

// addBlock folds one classified block into every aggregate — the fused body
// of all the legacy per-figure scan loops.
func (ix *Index) addBlock(st *BlockStat, compliant map[string]bool) {
	d := st.Day

	// Figure 3: payment decomposition.
	ix.payment.Add(d, ix.sBase, types.ToEther(st.Burned))
	ix.payment.Add(d, ix.sPriority, types.ToEther(st.Value)-types.ToEther(st.DirectTransfers))
	ix.payment.Add(d, ix.sDirect, types.ToEther(st.DirectTransfers))

	cls := ix.sLocal
	if st.PBS {
		cls = ix.sPBS
	}
	// Figure 4: PBS share.
	ix.pbs.Add(d, cls, 1)

	// Figures 5 and 6 (relays): fractional attribution.
	if len(st.RelayClaims) == 0 {
		ix.relayFrac.Add(d, ix.sNone, 1)
	} else {
		frac := 1.0 / float64(len(st.RelayClaims))
		for _, r := range st.RelayClaims {
			ix.relayFrac.Add(d, ix.relayFrac.GroupIndex(r), frac)
			ix.relayHHI.Add(d, ix.relayHHI.GroupIndex(r), frac)
		}
	}

	// Figures 6 (builders), 8, 11/12: cluster attribution.
	if st.PBS && st.BuilderCluster != "" {
		c := st.BuilderCluster
		ix.builderHHI.Add(d, ix.builderHHI.GroupIndex(c), 1)
		ix.builderSamples[c] = append(ix.builderSamples[c], st.BuilderProfitETH())
		ix.proposerSamples[c] = append(ix.proposerSamples[c], types.ToEther(st.Payment))
		ix.clusterBlocks[c]++
	}
	label := "(local)"
	if st.PBS {
		label = st.BuilderCluster
		if label == "" {
			label = "(unattributed)"
		}
	}
	ix.builderShare.Add(d, ix.builderShare.GroupIndex(label), 1)

	// Figures 9, 10, 13.
	ix.value.Add(d, cls, types.ToEther(st.Value))
	ix.profit.Add(d, cls, types.ToEther(st.ProposerProfit()))
	ix.gas.Add(d, cls, float64(st.Block.GasUsed))

	// Figure 14 (blocks with transactions only).
	if st.TotalTxs > 0 {
		ix.priv.Add(d, cls, float64(st.PrivateTxs)/float64(st.TotalTxs))
	}

	// Figures 15, 16, 20-22.
	ix.mevCount.Add(d, cls, float64(st.MEVTxs))
	ix.mevShare.Add(d, cls, st.MEVValueShare)
	ix.sandwich.Add(d, cls, float64(st.Sandwiches))
	ix.arbitrage.Add(d, cls, float64(st.Arbitrages))
	ix.liquidation.Add(d, cls, float64(st.Liquidations))

	// Figure 17: censoring-relay share among claimed PBS blocks.
	if st.PBS && len(st.RelayClaims) > 0 {
		frac := 1.0 / float64(len(st.RelayClaims))
		for _, r := range st.RelayClaims {
			g := ix.sOpen
			if compliant[r] {
				g = ix.sCensor
			}
			ix.censor.Add(d, g, frac)
		}
	}

	// Figure 18.
	v := 0.0
	if st.Sanctioned {
		v = 1
	}
	ix.sanctioned.Add(d, cls, v)

	// Figure 19: per-day PBS value and payment totals.
	if st.PBS {
		ix.split.Add(d, ix.sVal, types.ToEther(st.Value))
		ix.split.Add(d, ix.sPay, types.ToEther(st.Payment))
	}

	// Section 4 coverage.
	if st.PBS {
		ix.cov.pbs++
		if len(st.RelayClaims) > 0 {
			ix.cov.claimed++
		}
		if len(st.RelayClaims) > 1 {
			ix.cov.multi++
		}
		if st.PaymentDetected {
			ix.cov.paid++
		} else {
			ix.cov.noPayment++
			ix.cov.selfBuilt++
		}
	}
}

// merge folds a shard's partial index (covering a disjoint, later day
// range) into ix. Shards merge in day order, so per-cluster sample slices
// concatenate back into chain order.
func (ix *Index) merge(o *Index) {
	ix.payment.Merge(o.payment)
	ix.pbs.Merge(o.pbs)
	ix.relayFrac.Merge(o.relayFrac)
	ix.relayHHI.Merge(o.relayHHI)
	ix.builderHHI.Merge(o.builderHHI)
	ix.builderShare.Merge(o.builderShare)
	ix.value.Merge(o.value)
	ix.profit.Merge(o.profit)
	ix.gas.Merge(o.gas)
	ix.priv.Merge(o.priv)
	ix.mevCount.Merge(o.mevCount)
	ix.mevShare.Merge(o.mevShare)
	ix.sandwich.Merge(o.sandwich)
	ix.arbitrage.Merge(o.arbitrage)
	ix.liquidation.Merge(o.liquidation)
	ix.censor.Merge(o.censor)
	ix.sanctioned.Merge(o.sanctioned)
	ix.split.Merge(o.split)

	for c, s := range o.builderSamples {
		ix.builderSamples[c] = append(ix.builderSamples[c], s...)
	}
	for c, s := range o.proposerSamples {
		ix.proposerSamples[c] = append(ix.proposerSamples[c], s...)
	}
	for c, n := range o.clusterBlocks {
		ix.clusterBlocks[c] += n
	}
	ix.cov.pbs += o.cov.pbs
	ix.cov.claimed += o.cov.claimed
	ix.cov.multi += o.cov.multi
	ix.cov.paid += o.cov.paid
	ix.cov.noPayment += o.cov.noPayment
	ix.cov.selfBuilt += o.cov.selfBuilt
}

// buildIndex runs the sharded single pass. Shards are cut at day boundaries
// so each partial owns its days exclusively; if block days are ever
// non-monotonic (they are not, in chain order), it falls back to one shard
// rather than risk interleaving float additions.
func buildIndex(ctx context.Context, a *Analysis) (*Index, error) {
	lo, hi := 0, 0
	monotonic := true
	if len(a.stats) > 0 {
		lo, hi = a.stats[0].Day, a.stats[0].Day
		prev := lo
		for _, st := range a.stats[1:] {
			if st.Day < prev {
				monotonic = false
			}
			if st.Day < lo {
				lo = st.Day
			}
			if st.Day > hi {
				hi = st.Day
			}
			prev = st.Day
		}
	}
	relayNames := make([]string, 0, len(a.ds.Relays))
	compliant := make(map[string]bool, len(a.ds.Relays))
	for _, r := range a.ds.Relays {
		relayNames = append(relayNames, r.Name)
		compliant[r.Name] = r.OFACCompliant
	}
	clusterNames := make([]string, 0, len(a.clusters))
	for _, c := range a.clusters {
		clusterNames = append(clusterNames, c.Name)
	}

	shards := shardRangesByDay(a.stats, a.workers)
	if !monotonic {
		shards = [][2]int{{0, len(a.stats)}}
	}
	parts := make([]*Index, len(shards))
	err := stats.ParallelDaysErr(ctx, len(shards), a.workers, func(s int) error {
		ix := newIndexShell(lo, hi, relayNames, clusterNames)
		for i := shards[s][0]; i < shards[s][1]; i++ {
			ix.addBlock(a.stats[i], compliant)
		}
		parts[s] = ix
		return nil
	})
	if err != nil {
		return nil, err
	}
	dst := parts[0]
	for _, p := range parts[1:] {
		dst.merge(p)
	}
	dst.profit.Workers = a.workers
	dst.gas.Workers = a.workers
	if a.preDelay != nil {
		// The streaming build accumulated the delay samples while the
		// transactions were still resident; a re-walk here would find
		// only stripped headers.
		dst.delay = *a.preDelay
	} else {
		delay, err := a.idxInclusionDelay(ctx)
		if err != nil {
			return nil, err
		}
		dst.delay = delay
	}
	return dst, nil
}

// shardRangesByDay splits the corpus into at most k contiguous ranges whose
// boundaries never split a day.
func shardRangesByDay(sts []*BlockStat, k int) [][2]int {
	n := len(sts)
	if k > n {
		k = n
	}
	if k <= 1 {
		return [][2]int{{0, n}}
	}
	out := make([][2]int, 0, k)
	start := 0
	for s := 1; s < k && start < n; s++ {
		cut := s * n / k
		if cut <= start {
			continue
		}
		day := sts[cut-1].Day
		for cut < n && sts[cut].Day == day {
			cut++
		}
		if cut >= n {
			break
		}
		out = append(out, [2]int{start, cut})
		start = cut
	}
	return append(out, [2]int{start, n})
}

// meanSplit renders the PBS/local daily means of a local/pbs aggregate.
func meanSplit(d *stats.DayAgg) ValueSplit {
	return ValueSplit{PBS: d.SeriesMean("pbs"), Local: d.SeriesMean("local")}
}

func (ix *Index) figure3() PaymentShares {
	return PaymentShares{
		BaseFee:  ix.payment.Share("base"),
		Priority: ix.payment.Share("priority"),
		Direct:   ix.payment.Share("direct"),
	}
}

func (ix *Index) figure5() map[string]stats.Series {
	out := map[string]stats.Series{}
	for _, name := range ix.relayFrac.Groups() {
		if name == "(none)" || !ix.relayFrac.Observed(name) {
			continue
		}
		out[name] = ix.relayFrac.Share(name)
	}
	return out
}

func (ix *Index) figure8() map[string]stats.Series {
	out := map[string]stats.Series{}
	for _, name := range ix.builderShare.Groups() {
		if name == "(local)" || !ix.builderShare.Observed(name) {
			continue
		}
		out[name] = ix.builderShare.Share(name)
	}
	return out
}

func (ix *Index) figure10() ProfitBands {
	q := func(p float64) func([]float64) float64 {
		return func(v []float64) float64 { return stats.Quantile(v, p) }
	}
	return ProfitBands{
		PBSMedian: ix.profit.SeriesReduce("pbs", stats.Median),
		PBSQ1:     ix.profit.SeriesReduce("pbs", q(0.25)),
		PBSQ3:     ix.profit.SeriesReduce("pbs", q(0.75)),

		LocalMedian: ix.profit.SeriesReduce("local", stats.Median),
		LocalQ1:     ix.profit.SeriesReduce("local", q(0.25)),
		LocalQ3:     ix.profit.SeriesReduce("local", q(0.75)),
	}
}

func (ix *Index) figure11And12(n int) []BuilderBox {
	names := make([]string, 0, len(ix.clusterBlocks))
	for c := range ix.clusterBlocks {
		names = append(names, c)
	}
	sort.Slice(names, func(i, j int) bool {
		bi, bj := ix.clusterBlocks[names[i]], ix.clusterBlocks[names[j]]
		if bi != bj {
			return bi > bj
		}
		return names[i] < names[j]
	})
	if n > 0 && len(names) > n {
		names = names[:n]
	}
	out := make([]BuilderBox, 0, len(names))
	for _, c := range names {
		out = append(out, BuilderBox{
			Cluster:  c,
			Blocks:   ix.clusterBlocks[c],
			Builder:  stats.BoxOf(ix.builderSamples[c]),
			Proposer: stats.BoxOf(ix.proposerSamples[c]),
		})
	}
	return out
}

func (ix *Index) figure19() ProfitSplit {
	val := ix.split.SeriesSum("value")
	if val.Len() == 0 {
		return ProfitSplit{}
	}
	pay := ix.split.SeriesSum("payment")
	builder := stats.Series{Start: val.Start, Values: make([]float64, val.Len())}
	proposer := stats.Series{Start: val.Start, Values: make([]float64, val.Len())}
	for i := range val.Values {
		v := val.Values[i]
		if math.IsNaN(v) || v == 0 {
			builder.Values[i] = math.NaN()
			proposer.Values[i] = math.NaN()
			continue
		}
		p := pay.Values[i]
		proposer.Values[i] = p / v
		builder.Values[i] = 1 - p/v
	}
	return ProfitSplit{BuilderShare: builder, ProposerShare: proposer}
}

// idxFigure13 reads the gas aggregate; the gas target is the last block's
// limit over two, exactly as the sequential scan leaves it.
func (a *Analysis) idxFigure13() SizeBands {
	var target float64
	if n := len(a.stats); n > 0 {
		target = float64(a.stats[n-1].Block.GasLimit) / 2
	}
	ix := a.idx
	return SizeBands{
		PBSMean:   ix.gas.SeriesMean("pbs"),
		PBSStd:    ix.gas.SeriesReduce("pbs", stats.Std),
		LocalMean: ix.gas.SeriesMean("local"),
		LocalStd:  ix.gas.SeriesReduce("local", stats.Std),
		Target:    target,
	}
}

// idxFigure7 computes the per-relay distinct-builder counts with one worker
// per relay; each relay's series is independent, so parallel order cannot
// affect the result.
func (a *Analysis) idxFigure7() map[string]stats.Series {
	slotDays := a.slotDayIndex()
	results := make([]stats.Series, len(a.ds.Relays))
	stats.ParallelDays(len(a.ds.Relays), a.workers, func(i int) {
		r := a.ds.Relays[i]
		perDay := map[int]map[types.PubKey]bool{}
		for _, tr := range r.Received {
			day, ok := slotDays[tr.Slot]
			if !ok {
				continue
			}
			if perDay[day] == nil {
				perDay[day] = map[types.PubKey]bool{}
			}
			perDay[day][tr.BuilderPubkey] = true
		}
		g := stats.NewGrouped()
		for day, pubs := range perDay {
			g.Add(day, "n", float64(len(pubs)))
		}
		results[i] = g.Reduce("n", stats.Sum)
	})
	out := map[string]stats.Series{}
	for i, r := range a.ds.Relays {
		out[r.Name] = results[i]
	}
	return out
}

// idxInclusionDelay shards the delay scan; per-shard sample slices
// concatenate in shard (= chain) order.
func (a *Analysis) idxInclusionDelay(ctx context.Context) (DelayReport, error) {
	shards := shardRanges(len(a.stats), a.workers)
	type part struct{ regular, sanctioned []float64 }
	parts := make([]part, len(shards))
	err := stats.ParallelDaysErr(ctx, len(shards), a.workers, func(s int) error {
		p := &parts[s]
		for i := shards[s][0]; i < shards[s][1]; i++ {
			st := a.stats[i]
			b := st.Block
			for _, tx := range b.Txs {
				obs, ok := a.ds.Arrivals[tx.Hash()]
				if !ok {
					continue
				}
				first, seen := obs.FirstSeen()
				if !seen || first.After(b.Time) {
					continue
				}
				wait := b.Time.Sub(first).Seconds()
				if a.ds.Sanctions.IsSanctioned(tx.From, b.Time) ||
					a.ds.Sanctions.IsSanctioned(tx.To, b.Time) {
					p.sanctioned = append(p.sanctioned, wait)
				} else {
					p.regular = append(p.regular, wait)
				}
			}
		}
		return nil
	})
	if err != nil {
		return DelayReport{}, err
	}
	var regular, sanctioned []float64
	for _, p := range parts {
		regular = append(regular, p.regular...)
		sanctioned = append(sanctioned, p.sanctioned...)
	}
	rep := DelayReport{
		Regular:    stats.BoxOf(regular),
		Sanctioned: stats.BoxOf(sanctioned),
	}
	if rep.Regular.Mean > 0 {
		rep.MeanRatio = rep.Sanctioned.Mean / rep.Regular.Mean
	}
	return rep, nil
}
