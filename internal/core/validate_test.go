package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/ethpbs/pbslab/internal/faults"
	"github.com/ethpbs/pbslab/internal/sim"
)

// validateDataset simulates a short window and returns its dataset.
func validateDataset(t *testing.T, seed uint64) *sim.Result {
	t.Helper()
	sc := sim.DefaultScenario()
	sc.Seed = seed
	sc.End = sc.Start.Add(2 * 24 * time.Hour)
	sc.BlocksPerDay = 12
	sc.Validators = 200
	sc.Demand.Users = 120
	sc.Demand.TxPerBlock = sim.Flat(30)
	sc.SmallBuilderCount = 20
	res, err := sim.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidateCleanDataset(t *testing.T) {
	res := validateDataset(t, 1)
	rep := Validate(res.Dataset)
	if !rep.OK() {
		for _, v := range rep.Violations {
			t.Errorf("unexpected violation: %s", v)
		}
	}
	if len(rep.Quarantined) != 0 {
		t.Errorf("clean dataset quarantined blocks %v", rep.Quarantined)
	}
	var sb strings.Builder
	rep.Render(&sb)
	if !strings.Contains(sb.String(), "all invariants hold") {
		t.Errorf("clean render = %q", sb.String())
	}
}

func TestValidateDetectsEveryInjectedCorruption(t *testing.T) {
	res := validateDataset(t, 2)
	injected := faults.CorruptDataset(7, res.Dataset)
	if len(injected) != 5 {
		t.Fatalf("injector planted %d corruptions, want 5", len(injected))
	}
	rep := Validate(res.Dataset)
	if rep.OK() {
		t.Fatal("validator passed a corrupted dataset")
	}
	found := map[string]bool{}
	for _, v := range rep.Violations {
		found[v.Kind] = true
	}
	for _, c := range injected {
		if !found[c.Kind] {
			t.Errorf("injected %s but no %s violation reported", c, c.Kind)
		}
	}
	if len(rep.Quarantined) == 0 {
		t.Error("no blocks quarantined despite violations")
	}
	var sb strings.Builder
	rep.Render(&sb)
	if !strings.Contains(sb.String(), "quarantined") {
		t.Errorf("corrupt render = %q", sb.String())
	}
}

func TestValidateQuarantineSortedAndDeduplicated(t *testing.T) {
	res := validateDataset(t, 3)
	faults.CorruptDataset(11, res.Dataset)
	rep := Validate(res.Dataset)
	seen := map[uint64]bool{}
	for i, n := range rep.Quarantined {
		if seen[n] {
			t.Errorf("block %d quarantined twice", n)
		}
		seen[n] = true
		if i > 0 && rep.Quarantined[i-1] >= n {
			t.Errorf("quarantine list unsorted at %d: %v", i, rep.Quarantined)
		}
	}
}
