package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/ethpbs/pbslab/internal/sim"
)

// runAnalysis simulates a window and analyzes it with public builder labels.
func runAnalysis(t *testing.T, days int) (*Analysis, *sim.Result) {
	t.Helper()
	sc := sim.DefaultScenario()
	sc.End = sc.Start.Add(time.Duration(days) * 24 * time.Hour)
	sc.BlocksPerDay = 12
	sc.Validators = 200
	sc.Demand.Users = 120
	sc.Demand.TxPerBlock = sim.Flat(30)
	sc.SmallBuilderCount = 20
	res, err := sim.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	a := New(res.Dataset, WithBuilderLabels(res.World.BuilderLabels()))
	return a, res
}

func TestClassifierMatchesGroundTruth(t *testing.T) {
	a, res := runAnalysis(t, 6)
	agree, total := 0, 0
	falsePos, falseNeg := 0, 0
	for _, st := range a.Blocks() {
		truth := res.Truth.PBS[st.Block.Number]
		total++
		if st.PBS == truth {
			agree++
		} else if st.PBS {
			falsePos++
		} else {
			falseNeg++
		}
	}
	if total == 0 {
		t.Fatal("no blocks")
	}
	accuracy := float64(agree) / float64(total)
	if accuracy < 0.98 {
		t.Errorf("classifier accuracy = %.3f (fp=%d fn=%d of %d)",
			accuracy, falsePos, falseNeg, total)
	}
}

func TestBuilderAttributionMatchesGroundTruth(t *testing.T) {
	a, res := runAnalysis(t, 6)
	agree, total := 0, 0
	for _, st := range a.Blocks() {
		if !st.PBS || st.BuilderCluster == "" {
			continue
		}
		want := res.Truth.BuilderName[st.Block.Number]
		if want == "" {
			continue
		}
		total++
		if st.BuilderCluster == want {
			agree++
		}
	}
	if total == 0 {
		t.Fatal("no attributed PBS blocks")
	}
	if frac := float64(agree) / float64(total); frac < 0.95 {
		t.Errorf("builder attribution accuracy = %.3f over %d blocks", frac, total)
	}
}

func TestPromisedValueMatchesGroundTruth(t *testing.T) {
	a, res := runAnalysis(t, 5)
	for _, st := range a.Blocks() {
		if !st.PBS || len(st.RelayClaims) == 0 {
			continue
		}
		want, ok := res.Truth.Promised[st.Block.Number]
		if !ok {
			continue
		}
		// The analysis's max-claim must equal the winning announced value.
		if st.Promised != want {
			t.Fatalf("block %d: promised %s, truth %s",
				st.Block.Number, st.Promised, want)
		}
	}
}

func TestHeadlineFindings(t *testing.T) {
	a, _ := runAnalysis(t, 10)

	// Finding 1 (Figure 9/10): PBS blocks are worth more to proposers.
	val := a.Figure9BlockValue()
	if !(val.PBS.MeanValue() > val.Local.MeanValue()) {
		t.Errorf("PBS value %.5f <= local %.5f",
			val.PBS.MeanValue(), val.Local.MeanValue())
	}

	// Finding 2 (Figure 15): MEV concentrates in PBS blocks.
	mevSplit := a.Figure15MEVPerBlock()
	if !(mevSplit.PBS.MeanValue() >= mevSplit.Local.MeanValue()) {
		t.Errorf("MEV/block: PBS %.3f < local %.3f",
			mevSplit.PBS.MeanValue(), mevSplit.Local.MeanValue())
	}

	// Finding 3 (Figure 14): private flow lands in PBS blocks.
	priv := a.Figure14PrivateTxShare()
	if !(priv.PBS.MeanValue() > priv.Local.MeanValue()) {
		t.Errorf("private share: PBS %.4f <= local %.4f",
			priv.PBS.MeanValue(), priv.Local.MeanValue())
	}

	// Finding 4 (Figure 18): non-PBS blocks carry sanctioned txs more often.
	sanc := a.Figure18SanctionedShare()
	if !(sanc.Local.MeanValue() > sanc.PBS.MeanValue()) {
		t.Errorf("sanctioned share: local %.4f <= PBS %.4f",
			sanc.Local.MeanValue(), sanc.PBS.MeanValue())
	}
}

func TestRelayDataConsistency(t *testing.T) {
	a, _ := runAnalysis(t, 5)
	rows, total := a.Table4RelayTrust()
	if total.Blocks == 0 {
		t.Fatal("no PBS blocks in Table 4")
	}
	// Share delivered can never exceed 1 by more than float noise (relays
	// may under-promise never, over-promise sometimes).
	for _, r := range rows {
		if r.Blocks == 0 {
			continue
		}
		if r.ShareDelivered > 1+1e-9 {
			t.Errorf("%s delivered more than promised: %f", r.Relay, r.ShareDelivered)
		}
	}
	if total.ShareDelivered > 1+1e-9 {
		t.Errorf("total share = %f", total.ShareDelivered)
	}
}

func TestSummaryRenders(t *testing.T) {
	a, _ := runAnalysis(t, 4)
	var sb strings.Builder
	a.Summary(&sb)
	out := sb.String()
	for _, want := range []string{"PBS share", "relay HHI", "block value", "classifier"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	rows, totalRow := a.Table4RelayTrust()
	sb.Reset()
	RenderTable4(&sb, rows, totalRow)
	if !strings.Contains(sb.String(), "Table 4") {
		t.Error("Table 4 rendering empty")
	}
	sb.Reset()
	RenderTables2And3(&sb, a.Tables2And3Relays())
	if !strings.Contains(sb.String(), "Flashbots") {
		t.Error("Tables 2+3 missing relays")
	}
	sb.Reset()
	RenderBuilderBoxes(&sb, a.Figures11And12BuilderBoxes(11))
	RenderTable5(&sb, a.Clusters(), 17)
	RenderCoverage(&sb, a.ClassifierCoverage())
	RenderSeries(&sb, "fig4", a.Figure4PBSShare(), 1)
	RenderMultiSeries(&sb, "fig5", a.Figure5RelayShares(), 1)
	if len(sb.String()) == 0 {
		t.Error("renders produced nothing")
	}
}

func TestInclusionDelayShowsCensorship(t *testing.T) {
	a, _ := runAnalysis(t, 10)
	rep := a.InclusionDelay()
	if rep.Regular.N == 0 || rep.Sanctioned.N == 0 {
		t.Skipf("not enough samples: regular=%d sanctioned=%d", rep.Regular.N, rep.Sanctioned.N)
	}
	// Sanctioned transactions must wait at least as long on average: most
	// builders and half the relays filter them, so they queue for a
	// non-filtering block.
	if rep.MeanRatio < 1 {
		t.Errorf("sanctioned txs waited LESS: ratio=%.2f (reg %.0fs, sanc %.0fs)",
			rep.MeanRatio, rep.Regular.Mean, rep.Sanctioned.Mean)
	}
}
