package core

import (
	"sync"

	"github.com/ethpbs/pbslab/internal/mev"
	"github.com/ethpbs/pbslab/internal/stats"
)

// This file is the public face of the analysis engine. Every figure/table
// method dispatches to either the single-pass Index (the default) or the
// legacy sequential scan (WithSequential), and memoizes the result behind a
// sync.Once so repeated renders — tables.txt recomputes most of what the CSV
// artifacts also need — pay for each computation exactly once.
//
// Determinism contract: for a given dataset, both paths return bit-identical
// values (covered by the golden test in golden_test.go). Returned slices and
// maps are shared between callers once memoized; treat them as read-only.

// memoOf caches a single computed value.
type memoOf[T any] struct {
	once sync.Once
	v    T
}

// memoized computes once per Analysis (or every time under WithoutMemo).
func memoized[T any](a *Analysis, m *memoOf[T], compute func() T) T {
	if a.noMemo {
		return compute()
	}
	m.once.Do(func() { m.v = compute() })
	return m.v
}

// keyedMemo caches computed values per key (parameterized methods).
type keyedMemo[K comparable, T any] struct {
	mu sync.Mutex
	m  map[K]T
}

// memoizedKey computes at most once per key. The compute runs outside the
// lock; a concurrent duplicate is discarded in favor of the first store
// (both are identical by the determinism contract).
func memoizedKey[K comparable, T any](a *Analysis, km *keyedMemo[K, T], k K, compute func() T) T {
	if a.noMemo {
		return compute()
	}
	km.mu.Lock()
	if v, ok := km.m[k]; ok {
		km.mu.Unlock()
		return v
	}
	km.mu.Unlock()
	v := compute()
	km.mu.Lock()
	defer km.mu.Unlock()
	if km.m == nil {
		km.m = map[K]T{}
	}
	if old, ok := km.m[k]; ok {
		return old
	}
	km.m[k] = v
	return v
}

// table4Result bundles Table 4's per-relay rows with the totals row.
type table4Result struct {
	rows  []RelayTrustRow
	total RelayTrustRow
}

// figMemo holds one slot per memoized analysis product.
type figMemo struct {
	fig3      memoOf[PaymentShares]
	fig4      memoOf[stats.Series]
	fig5      memoOf[map[string]stats.Series]
	fig6      memoOf[HHISeries]
	fig7      memoOf[map[string]stats.Series]
	fig8      memoOf[map[string]stats.Series]
	fig9      memoOf[ValueSplit]
	fig10     memoOf[ProfitBands]
	boxes     keyedMemo[int, []BuilderBox]
	fig13     memoOf[SizeBands]
	fig14     memoOf[ValueSplit]
	fig15     memoOf[ValueSplit]
	fig16     memoOf[ValueSplit]
	fig17     memoOf[stats.Series]
	fig18     memoOf[ValueSplit]
	fig19     memoOf[ProfitSplit]
	mevKind   keyedMemo[mev.Kind, ValueSplit]
	coverage  memoOf[CoverageReport]
	conc      memoOf[ConcentrationComparison]
	table4    memoOf[table4Result]
	tables23  memoOf[[]RelayPolicyRow]
	ethical   memoOf[map[string]int]
	ofacLag   keyedMemo[int, []LagGapRow]
	mevTotals memoOf[map[mev.Kind]int]
	delay     memoOf[DelayReport]
	clusters  memoOf[[]*Cluster]
}

// Figure3PaymentShares computes the daily payment decomposition (Figure 3).
func (a *Analysis) Figure3PaymentShares() PaymentShares {
	return memoized(a, &a.memo.fig3, func() PaymentShares {
		if a.idx != nil {
			return a.idx.figure3()
		}
		return a.scanFigure3PaymentShares()
	})
}

// Figure4PBSShare computes the daily share of blocks classified as PBS.
func (a *Analysis) Figure4PBSShare() stats.Series {
	return memoized(a, &a.memo.fig4, func() stats.Series {
		if a.idx != nil {
			return a.idx.pbs.Share("pbs")
		}
		return a.scanFigure4PBSShare()
	})
}

// Figure5RelayShares computes each relay's daily share of all blocks, with
// multi-relay blocks attributed fractionally.
func (a *Analysis) Figure5RelayShares() map[string]stats.Series {
	return memoized(a, &a.memo.fig5, func() map[string]stats.Series {
		if a.idx != nil {
			return a.idx.figure5()
		}
		return a.scanFigure5RelayShares()
	})
}

// Figure6HHI computes the relay and builder concentration series.
func (a *Analysis) Figure6HHI() HHISeries {
	return memoized(a, &a.memo.fig6, func() HHISeries {
		if a.idx != nil {
			return HHISeries{Relays: a.idx.relayHHI.HHI(), Builders: a.idx.builderHHI.HHI()}
		}
		return a.scanFigure6HHI()
	})
}

// Figure7BuildersPerRelay counts, per relay and day, the distinct builder
// pubkeys that submitted blocks (from builder_blocks_received).
func (a *Analysis) Figure7BuildersPerRelay() map[string]stats.Series {
	return memoized(a, &a.memo.fig7, func() map[string]stats.Series {
		if a.idx != nil {
			return a.idxFigure7()
		}
		return a.scanFigure7BuildersPerRelay()
	})
}

// Figure8BuilderShares computes each builder cluster's daily share of all
// blocks.
func (a *Analysis) Figure8BuilderShares() map[string]stats.Series {
	return memoized(a, &a.memo.fig8, func() map[string]stats.Series {
		if a.idx != nil {
			return a.idx.figure8()
		}
		return a.scanFigure8BuilderShares()
	})
}

// Figure9BlockValue computes daily mean block value (ETH) for PBS and
// non-PBS blocks.
func (a *Analysis) Figure9BlockValue() ValueSplit {
	return memoized(a, &a.memo.fig9, func() ValueSplit {
		if a.idx != nil {
			return ValueSplit{PBS: a.idx.value.SeriesMean("pbs"), Local: a.idx.value.SeriesMean("local")}
		}
		return a.scanFigure9BlockValue()
	})
}

// Figure10ProposerProfit computes the daily proposer-profit distribution.
func (a *Analysis) Figure10ProposerProfit() ProfitBands {
	return memoized(a, &a.memo.fig10, func() ProfitBands {
		if a.idx != nil {
			return a.idx.figure10()
		}
		return a.scanFigure10ProposerProfit()
	})
}

// Figures11And12BuilderBoxes computes per-cluster profit distributions for
// the top n builders by block count.
func (a *Analysis) Figures11And12BuilderBoxes(n int) []BuilderBox {
	return memoizedKey(a, &a.memo.boxes, n, func() []BuilderBox {
		if a.idx != nil {
			return a.idx.figure11And12(n)
		}
		return a.scanFigures11And12BuilderBoxes(n)
	})
}

// Figure13BlockSize computes the block-size series.
func (a *Analysis) Figure13BlockSize() SizeBands {
	return memoized(a, &a.memo.fig13, func() SizeBands {
		if a.idx != nil {
			return a.idxFigure13()
		}
		return a.scanFigure13BlockSize()
	})
}

// Figure14PrivateTxShare computes the daily share of included transactions
// that never appeared in the public mempool, split by PBS class.
func (a *Analysis) Figure14PrivateTxShare() ValueSplit {
	return memoized(a, &a.memo.fig14, func() ValueSplit {
		if a.idx != nil {
			return meanSplit(a.idx.priv)
		}
		return a.scanFigure14PrivateTxShare()
	})
}

// Figure15MEVPerBlock computes the daily mean count of MEV transactions per
// block, split by PBS class.
func (a *Analysis) Figure15MEVPerBlock() ValueSplit {
	return memoized(a, &a.memo.fig15, func() ValueSplit {
		if a.idx != nil {
			return meanSplit(a.idx.mevCount)
		}
		return a.scanFigure15MEVPerBlock()
	})
}

// Figure16MEVValueShare computes the daily mean share of block value
// attributable to MEV transactions.
func (a *Analysis) Figure16MEVValueShare() ValueSplit {
	return memoized(a, &a.memo.fig16, func() ValueSplit {
		if a.idx != nil {
			return meanSplit(a.idx.mevShare)
		}
		return a.scanFigure16MEVValueShare()
	})
}

// Figure17CensoringShare computes the daily share of PBS blocks delivered
// by relays that announce OFAC compliance.
func (a *Analysis) Figure17CensoringShare() stats.Series {
	return memoized(a, &a.memo.fig17, func() stats.Series {
		if a.idx != nil {
			return a.idx.censor.Share("censoring")
		}
		return a.scanFigure17CensoringShare()
	})
}

// Figure18SanctionedShare computes the daily share of blocks containing
// non-OFAC-compliant transactions, split by PBS class.
func (a *Analysis) Figure18SanctionedShare() ValueSplit {
	return memoized(a, &a.memo.fig18, func() ValueSplit {
		if a.idx != nil {
			return meanSplit(a.idx.sanctioned)
		}
		return a.scanFigure18SanctionedShare()
	})
}

// Figure19ProfitSplit computes the daily builder/proposer split of PBS
// block value (Appendix C).
func (a *Analysis) Figure19ProfitSplit() ProfitSplit {
	return memoized(a, &a.memo.fig19, func() ProfitSplit {
		if a.idx != nil {
			return a.idx.figure19()
		}
		return a.scanFigure19ProfitSplit()
	})
}

// Figure20To22MEVKind computes the per-kind daily mean counts (Appendix D).
func (a *Analysis) Figure20To22MEVKind(kind mev.Kind) ValueSplit {
	return memoizedKey(a, &a.memo.mevKind, kind, func() ValueSplit {
		if a.idx != nil {
			switch kind {
			case mev.KindSandwich:
				return meanSplit(a.idx.sandwich)
			case mev.KindArbitrage:
				return meanSplit(a.idx.arbitrage)
			default:
				return meanSplit(a.idx.liquidation)
			}
		}
		return a.scanFigure20To22MEVKind(kind)
	})
}

// ClassifierCoverage measures the classifier's own coverage (Section 4).
func (a *Analysis) ClassifierCoverage() CoverageReport {
	return memoized(a, &a.memo.coverage, func() CoverageReport {
		if a.idx != nil {
			return a.idx.cov.report()
		}
		return a.scanClassifierCoverage()
	})
}

// RelayConcentration computes daily HHI and Gini over relay block counts.
func (a *Analysis) RelayConcentration() ConcentrationComparison {
	return memoized(a, &a.memo.conc, a.scanRelayConcentration)
}

// Table4RelayTrust audits every relay: promised vs delivered value and
// censorship gaps. Totals are returned as a synthetic "PBS" row.
func (a *Analysis) Table4RelayTrust() ([]RelayTrustRow, RelayTrustRow) {
	r := memoized(a, &a.memo.table4, func() table4Result {
		rows, total := a.scanTable4RelayTrust()
		return table4Result{rows: rows, total: total}
	})
	return r.rows, r.total
}

// Tables2And3Relays reproduces the relay registry and policy matrix.
func (a *Analysis) Tables2And3Relays() []RelayPolicyRow {
	return memoized(a, &a.memo.tables23, a.scanTables2And3Relays)
}

// EthicalFilterGap counts sandwich attacks that landed in blocks delivered
// by a relay that advertises front-running filtering (Section 5.4).
func (a *Analysis) EthicalFilterGap() map[string]int {
	return memoized(a, &a.memo.ethical, a.scanEthicalFilterGap)
}

// OFACUpdateLag measures whether compliant-relay censorship gaps
// concentrate after sanctions-list updates (Section 6).
func (a *Analysis) OFACUpdateLag(windowDays int) []LagGapRow {
	return memoizedKey(a, &a.memo.ofacLag, windowDays, func() []LagGapRow {
		return a.scanOFACUpdateLag(windowDays)
	})
}

// MEVTotals counts union labels per kind (the Appendix D headline totals).
func (a *Analysis) MEVTotals() map[mev.Kind]int {
	return memoized(a, &a.memo.mevTotals, a.scanMEVTotals)
}

// InclusionDelay measures mempool-to-inclusion waiting times for every
// publicly observed transaction, split regular vs sanctioned.
func (a *Analysis) InclusionDelay() DelayReport {
	return memoized(a, &a.memo.delay, func() DelayReport {
		if a.idx != nil {
			return a.idx.delay // precomputed in buildIndex
		}
		return a.scanInclusionDelay()
	})
}

// Clusters returns the builder identity clusters, largest first.
func (a *Analysis) Clusters() []*Cluster {
	return memoized(a, &a.memo.clusters, a.sortedClusters)
}
