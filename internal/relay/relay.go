// Package relay implements MEV-Boost relays: escrow between builders and
// proposers. A relay accepts full blocks from builders, validates them
// (where the paper found it actually did), filters them per its announced
// censorship and MEV policies (with the gaps the paper measured), serves
// the best blinded bid to the registered proposer, and reveals the payload
// only against a signed header.
//
// Relay misbehaviour is implemented as faults in the relay, never in the
// measurement pipeline: value over-promising, disabled validation windows
// (the Manifold 2022-10-15 and Eden block-15,703,347 incidents), and OFAC
// blacklist update lag (Flashbots applying the 2022-11-08 list two days
// late and never applying the 2023-02-01 update).
package relay

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/ethpbs/pbslab/internal/chain"
	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/mev"
	"github.com/ethpbs/pbslab/internal/ofac"
	"github.com/ethpbs/pbslab/internal/pbs"
	"github.com/ethpbs/pbslab/internal/state"
	"github.com/ethpbs/pbslab/internal/types"
)

// Access describes how builders connect to a relay (Table 3).
type Access uint8

// Access modes.
const (
	// AccessInternal relays only carry their own builders' blocks.
	AccessInternal Access = iota
	// AccessInternalExternal relays run builders and vet external ones.
	AccessInternalExternal
	// AccessPermissionless relays accept any builder.
	AccessPermissionless
	// AccessInternalPermissionless relays run a builder and accept anyone
	// (Flashbots).
	AccessInternalPermissionless
)

var accessNames = [...]string{
	"internal", "internal & external", "permissionless", "internal & permissionless",
}

// String implements fmt.Stringer.
func (a Access) String() string {
	if int(a) < len(accessNames) {
		return accessNames[a]
	}
	return "unknown"
}

// Permissionless reports whether arbitrary builders may register.
func (a Access) Permissionless() bool {
	return a == AccessPermissionless || a == AccessInternalPermissionless
}

// Window is a half-open time interval [From, To).
type Window struct {
	From, To time.Time
}

// Contains reports whether t falls in the window.
func (w Window) Contains(t time.Time) bool {
	return !t.Before(w.From) && t.Before(w.To)
}

// Faults models the documented gaps between what relays promise and what
// they do. A zero Faults value is an honest, careful relay.
type Faults struct {
	// NoValueCheck lists windows where the relay did not verify the
	// builder's claimed value against the actual proposer payment.
	NoValueCheck []Window
	// NoBlockValidation lists windows where the relay skipped execution
	// validation entirely (the Manifold incident).
	NoBlockValidation []Window
	// BlacklistApplied overrides when an OFAC update wave (keyed by its
	// designation date, formatted 2006-01-02) was actually enforced.
	// Missing keys follow the day-after-designation rule; a far-future
	// value means the wave was never applied.
	BlacklistApplied map[string]time.Time
	// SandwichFilterCoverage is the effective coverage of the announced
	// front-running filter; the shortfall is the paper's "significant
	// gaps" (2,002 sandwiches through bloXroute Ethical).
	SandwichFilterCoverage float64
	// OverPromiseProb is the per-served-bid probability that the relay
	// announces slightly more value than the block delivers (stale-bid
	// races), with relative size OverPromiseFrac.
	OverPromiseProb float64
	// OverPromiseFrac is the relative inflation of an over-promised bid.
	OverPromiseFrac float64
}

func inWindows(ws []Window, t time.Time) bool {
	for _, w := range ws {
		if w.Contains(t) {
			return true
		}
	}
	return false
}

// Policy is a relay's public configuration (Tables 2 and 3).
type Policy struct {
	Name     string
	Endpoint string
	Fork     string // "MEV Boost" or "Dreamboat"
	Access   Access
	// OFACCompliant relays announce they censor sanctioned transactions.
	OFACCompliant bool
	// MEVFilter relays announce they filter front-running/sandwiches.
	MEVFilter bool
	Faults    Faults
}

// Submission/flow errors.
var (
	ErrUnknownBuilder      = errors.New("relay: builder not registered")
	ErrBuilderNotPermitted = errors.New("relay: builder access denied")
	ErrBadSignature        = errors.New("relay: bad signature")
	ErrUnknownProposer     = errors.New("relay: proposer not registered")
	ErrWrongFeeRecipient   = errors.New("relay: fee recipient does not match registration")
	ErrValidationFailed    = errors.New("relay: block validation failed")
	ErrValueMismatch       = errors.New("relay: claimed value exceeds actual payment")
	ErrCensored            = errors.New("relay: block contains sanctioned transactions")
	ErrMEVFiltered         = errors.New("relay: block contains filtered MEV")
	ErrNoBid               = errors.New("relay: no bid for slot")
	ErrUnknownPayload      = errors.New("relay: no escrowed payload for header")
)

// DeliveredEntry is the relay's record of a payload it handed to a
// proposer, with the value it ANNOUNCED (which is what Table 4 audits).
type DeliveredEntry struct {
	Trace pbs.BidTrace
	At    time.Time
}

// ChainView is the relay's validation interface onto the chain. The
// simulator passes a caching wrapper so a block submitted to several relays
// is executed once.
type ChainView interface {
	Validate(block *types.Block) (*chain.ProcessResult, *state.State, error)
}

// Relay is one running relay instance.
type Relay struct {
	Policy
	chain     ChainView
	sanctions *ofac.Registry
	// blSchedule, when non-nil, replaces the per-submission blacklist
	// rebuild with a precomputed boundary schedule (same membership, served
	// as shared read-only maps). The simulator's parallel slot engine
	// enables it; the legacy path keeps the per-lookup rebuild.
	blSchedule *ofac.Schedule

	builderVKs map[types.PubKey]crypto.Hash
	internal   map[types.PubKey]bool
	validators map[types.PubKey]pbs.Registration

	subsBySlot map[uint64][]*pbs.Submission
	bestBySlot map[uint64]*pbs.Submission
	byHash     map[types.Hash]*pbs.Submission
	// announced remembers the (possibly inflated) value served per block.
	announced map[types.Hash]types.Wei

	received  []pbs.BidTrace
	delivered []DeliveredEntry
	rejected  int
}

// New creates a relay bound to a chain view (its validation oracle) and the
// global sanctions registry (which it snapshots with its own lag).
func New(p Policy, c ChainView, sanctions *ofac.Registry) *Relay {
	return &Relay{
		Policy:     p,
		chain:      c,
		sanctions:  sanctions,
		builderVKs: map[types.PubKey]crypto.Hash{},
		internal:   map[types.PubKey]bool{},
		validators: map[types.PubKey]pbs.Registration{},
		subsBySlot: map[uint64][]*pbs.Submission{},
		bestBySlot: map[uint64]*pbs.Submission{},
		byHash:     map[types.Hash]*pbs.Submission{},
		announced:  map[types.Hash]types.Wei{},
	}
}

// AllowBuilder registers a builder as vetted by the relay operator
// (internal builders, or externals on invite-only relays).
func (r *Relay) AllowBuilder(pub types.PubKey, vk crypto.Hash) {
	r.builderVKs[pub] = vk
	r.internal[pub] = true
}

// RegisterBuilder handles a builder's own registration request; only
// permissionless relays accept it.
func (r *Relay) RegisterBuilder(pub types.PubKey, vk crypto.Hash) error {
	if !r.Access.Permissionless() {
		return fmt.Errorf("%w: %s requires operator vetting", ErrBuilderNotPermitted, r.Name)
	}
	r.builderVKs[pub] = vk
	return nil
}

// KnowsBuilder reports whether the builder may submit here.
func (r *Relay) KnowsBuilder(pub types.PubKey) bool {
	_, ok := r.builderVKs[pub]
	return ok
}

// RegisterValidator subscribes a proposer to this relay.
func (r *Relay) RegisterValidator(reg pbs.Registration) {
	r.validators[reg.Pubkey] = reg
}

// ValidatorCount returns the number of registered proposers.
func (r *Relay) ValidatorCount() int { return len(r.validators) }

// ValidatorRegistration returns the proposer's registration, if any.
func (r *Relay) ValidatorRegistration(pub types.PubKey) (pbs.Registration, bool) {
	reg, ok := r.validators[pub]
	return reg, ok
}

// ValidatesAt reports whether the relay runs execution validation at time t
// (i.e. t is outside its NoBlockValidation fault windows). The simulator's
// parallel slot engine uses it to pre-validate exactly the blocks a
// sequential submission pass would validate.
func (r *Relay) ValidatesAt(t time.Time) bool {
	return !inWindows(r.Faults.NoBlockValidation, t)
}

// Registrations returns the registered proposers sorted by pubkey — the
// "proposers currently connected to the relay" listing the paper's crawler
// requested from each relay.
func (r *Relay) Registrations() []pbs.Registration {
	out := make([]pbs.Registration, 0, len(r.validators))
	for _, reg := range r.validators {
		out = append(out, reg)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Pubkey.Hex() < out[j].Pubkey.Hex()
	})
	return out
}

// appliedAt resolves when the relay actually starts enforcing a
// designation: the day-after rule, unless the wave has a lag override.
func (r *Relay) appliedAt(d ofac.Designation) time.Time {
	applied := d.Effective()
	waveKey := d.Designated.UTC().Format("2006-01-02")
	if override, ok := r.Faults.BlacklistApplied[waveKey]; ok {
		applied = override
	}
	return applied
}

// EnableBlacklistSchedule precomputes the relay's wave-lagged blacklist as
// an ofac.Schedule, so SubmitBlock resolves its sanction set with a binary
// search instead of rebuilding a map per submission. Membership is
// identical to the per-lookup rebuild.
func (r *Relay) EnableBlacklistSchedule() {
	r.blSchedule = ofac.NewSchedule(r.sanctions, r.appliedAt)
}

// blacklistAt builds the relay's enforced sanction set at time t, honoring
// per-wave application lag.
func (r *Relay) blacklistAt(t time.Time) map[types.Address]bool {
	if r.blSchedule != nil {
		return r.blSchedule.At(t)
	}
	out := map[types.Address]bool{}
	for _, d := range r.sanctions.All() {
		if !t.Before(r.appliedAt(d)) {
			out[d.Address] = true
		}
	}
	return out
}

// touchesSanctioned reports whether any transaction moves value from or to
// a blacklisted address, scanning senders/recipients, execution traces and
// token transfer logs — the paper's detection surface.
func touchesSanctioned(block *types.Block, res *chain.ProcessResult, blacklist map[types.Address]bool) bool {
	if len(blacklist) == 0 {
		return false
	}
	for _, tx := range block.Txs {
		if blacklist[tx.From] || blacklist[tx.To] {
			return true
		}
	}
	if res == nil {
		return false
	}
	for _, tr := range res.Traces {
		if blacklist[tr.From] || blacklist[tr.To] {
			return true
		}
	}
	for _, rcpt := range res.Receipts {
		for _, lg := range rcpt.Logs {
			if len(lg.Topics) == 3 && lg.Topics[0] == topicTransfer {
				from := topicAddr(lg.Topics[1])
				to := topicAddr(lg.Topics[2])
				if blacklist[from] || blacklist[to] {
					return true
				}
			}
		}
	}
	return false
}

// filterCatchesSandwich decides deterministically whether the relay's
// front-running filter spots a given sandwich.
func (r *Relay) filterCatchesSandwich(l mev.Label) bool {
	cov := r.Faults.SandwichFilterCoverage
	if cov >= 1 {
		return true
	}
	if cov <= 0 {
		return false
	}
	h := l.Txs[0]
	digest := crypto.Keccak256([]byte("relay-filter/"+r.Name), h[:])
	draw := float64(uint32(digest[0])<<8|uint32(digest[1])) / 65536
	return draw < cov
}

// SubmitBlock processes one builder submission at wall-clock time at.
func (r *Relay) SubmitBlock(at time.Time, sub *pbs.Submission) error {
	vk, ok := r.builderVKs[sub.Trace.BuilderPubkey]
	if !ok {
		return ErrUnknownBuilder
	}
	if !pbs.VerifySubmission(vk, sub) {
		return ErrBadSignature
	}
	reg, ok := r.validators[sub.Trace.ProposerPubkey]
	if !ok {
		return ErrUnknownProposer
	}
	if reg.FeeRecipient != sub.Trace.ProposerFeeRecipient {
		return ErrWrongFeeRecipient
	}

	validating := !inWindows(r.Faults.NoBlockValidation, at)
	var res *chain.ProcessResult
	if validating {
		var err error
		res, _, err = r.chain.Validate(sub.Block)
		if err != nil {
			r.rejected++
			return fmt.Errorf("%w: %v", ErrValidationFailed, err)
		}
		if !inWindows(r.Faults.NoValueCheck, at) {
			actual := ActualPayment(sub.Block, sub.Trace.ProposerFeeRecipient)
			if actual.Lt(sub.Trace.Value) {
				r.rejected++
				return fmt.Errorf("%w: claimed %s, pays %s", ErrValueMismatch,
					sub.Trace.Value, actual)
			}
		}
	}

	if r.OFACCompliant {
		if touchesSanctioned(sub.Block, res, r.blacklistAt(at)) {
			r.rejected++
			return ErrCensored
		}
	}

	if r.MEVFilter && res != nil {
		view := mev.BlockView{Number: sub.Block.Number(), Txs: sub.Block.Txs, Receipts: res.Receipts}
		for _, label := range mev.DetectSandwiches(view) {
			if r.filterCatchesSandwich(label) {
				r.rejected++
				return ErrMEVFiltered
			}
		}
	}

	sub.ReceivedAt = at
	slot := sub.Trace.Slot
	r.subsBySlot[slot] = append(r.subsBySlot[slot], sub)
	r.byHash[sub.Trace.BlockHash] = sub
	r.received = append(r.received, sub.Trace)
	best, ok := r.bestBySlot[slot]
	if !ok || sub.Trace.Value.Gt(best.Trace.Value) {
		r.bestBySlot[slot] = sub
	}
	return nil
}

// ActualPayment extracts the proposer payment a block actually carries per
// the PBS convention: the final transaction, sent by the block's fee
// recipient to the proposer's fee recipient.
func ActualPayment(block *types.Block, proposerFeeRecipient types.Address) types.Wei {
	if len(block.Txs) == 0 {
		return types.Wei{}
	}
	last := block.Txs[len(block.Txs)-1]
	if last.From == block.Header.FeeRecipient && last.To == proposerFeeRecipient {
		return last.Value
	}
	return types.Wei{}
}

// GetHeader serves the blinded bid for (slot, proposer), possibly
// over-promising per the relay's faults.
func (r *Relay) GetHeader(slot uint64, proposer types.PubKey) (*pbs.Bid, error) {
	best, ok := r.bestBySlot[slot]
	if !ok || best.Trace.ProposerPubkey != proposer {
		return nil, ErrNoBid
	}
	value := best.Trace.Value
	if r.Faults.OverPromiseProb > 0 {
		h := best.Trace.BlockHash
		digest := crypto.Keccak256([]byte("relay-promise/"+r.Name), h[:])
		draw := float64(uint32(digest[0])<<16|uint32(digest[1])<<8|uint32(digest[2])) / float64(1<<24)
		if draw < r.Faults.OverPromiseProb {
			bump := value.Mul64(uint64(r.Faults.OverPromiseFrac * 1e6)).Div64(1e6)
			value = value.Add(bump)
		}
	}
	r.announced[best.Trace.BlockHash] = value
	return &pbs.Bid{
		Relay:         r.Name,
		Slot:          slot,
		Header:        best.Block.Header,
		Value:         value,
		BlockHash:     best.Trace.BlockHash,
		BuilderPubkey: best.Trace.BuilderPubkey,
	}, nil
}

// GetPayload reveals the escrowed block against a valid signed header and
// records the delivery (with the announced value) for the data API.
func (r *Relay) GetPayload(at time.Time, signed *pbs.SignedBlindedHeader) (*types.Block, error) {
	reg, ok := r.validators[signed.ProposerPubkey]
	if !ok {
		return nil, ErrUnknownProposer
	}
	if !pbs.VerifyBlindedHeader(reg.VerifyKey, signed) {
		return nil, ErrBadSignature
	}
	sub, ok := r.byHash[signed.BlockHash]
	if !ok {
		return nil, ErrUnknownPayload
	}
	trace := sub.Trace
	if v, ok := r.announced[signed.BlockHash]; ok {
		trace.Value = v
	}
	r.delivered = append(r.delivered, DeliveredEntry{Trace: trace, At: at})
	return sub.Block, nil
}

// Delivered returns the relay's proposer_payload_delivered records.
func (r *Relay) Delivered() []DeliveredEntry { return r.delivered }

// Received returns the relay's builder_blocks_received records.
func (r *Relay) Received() []pbs.BidTrace { return r.received }

// Rejected returns how many submissions the relay refused.
func (r *Relay) Rejected() int { return r.rejected }

// BuildersSeen returns the distinct builder pubkeys that submitted in
// [fromSlot, toSlot], sorted; Figure 7's builders-per-relay series
// aggregates this per day.
func (r *Relay) BuildersSeen(fromSlot, toSlot uint64) []types.PubKey {
	seen := map[types.PubKey]bool{}
	for _, tr := range r.received {
		if tr.Slot >= fromSlot && tr.Slot <= toSlot {
			seen[tr.BuilderPubkey] = true
		}
	}
	out := make([]types.PubKey, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hex() < out[j].Hex() })
	return out
}

// Records is the serializable durable state of a relay: proposer
// registrations plus the data-API ledgers. Per-slot escrow is deliberately
// absent — it only lives for two slots (PruneSlot) and checkpoints are
// taken at day boundaries, where auctions of past slots can never be read
// again. Builder keys are not captured either; they are re-derived from the
// scenario on restore.
type Records struct {
	Validators []pbs.Registration
	Received   []pbs.BidTrace
	Delivered  []DeliveredEntry
	Rejected   int
}

// ExportRecords snapshots the relay's durable state for a checkpoint.
func (r *Relay) ExportRecords() Records {
	return Records{
		Validators: r.Registrations(),
		Received:   append([]pbs.BidTrace(nil), r.received...),
		Delivered:  append([]DeliveredEntry(nil), r.delivered...),
		Rejected:   r.rejected,
	}
}

// RestoreRecords replaces the relay's durable state from a checkpoint.
func (r *Relay) RestoreRecords(rec Records) {
	r.validators = make(map[types.PubKey]pbs.Registration, len(rec.Validators))
	for _, reg := range rec.Validators {
		r.validators[reg.Pubkey] = reg
	}
	r.received = append([]pbs.BidTrace(nil), rec.Received...)
	r.delivered = append([]DeliveredEntry(nil), rec.Delivered...)
	r.rejected = rec.Rejected
}

// PruneSlot drops per-slot escrow older than the given slot, bounding
// memory across long simulations. API records are retained.
func (r *Relay) PruneSlot(olderThan uint64) {
	for slot, subs := range r.subsBySlot {
		if slot >= olderThan {
			continue
		}
		for _, s := range subs {
			delete(r.byHash, s.Trace.BlockHash)
			delete(r.announced, s.Trace.BlockHash)
		}
		delete(r.subsBySlot, slot)
		delete(r.bestBySlot, slot)
	}
}

// Transfer topic handling without importing defi (avoids a dependency
// cycle risk and keeps relay filtering self-contained).
var topicTransfer = crypto.Keccak256([]byte("Transfer(address,address,uint256)"))

func topicAddr(h types.Hash) types.Address {
	var a types.Address
	copy(a[:], h[12:])
	return a
}
