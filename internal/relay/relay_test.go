package relay

import (
	"errors"
	"testing"
	"time"

	"github.com/ethpbs/pbslab/internal/builder"
	"github.com/ethpbs/pbslab/internal/chain"
	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/defi"
	"github.com/ethpbs/pbslab/internal/evm"
	"github.com/ethpbs/pbslab/internal/ofac"
	"github.com/ethpbs/pbslab/internal/pbs"
	"github.com/ethpbs/pbslab/internal/rng"
	"github.com/ethpbs/pbslab/internal/state"
	"github.com/ethpbs/pbslab/internal/types"
	"github.com/ethpbs/pbslab/internal/u256"
)

var (
	alice       = crypto.AddressFromSeed("alice")
	bob         = crypto.AddressFromSeed("bob")
	proposerFee = crypto.AddressFromSeed("proposer-fee")
	badActor    = crypto.AddressFromSeed("ofac/tornado/0") // sanctioned in DefaultList
)

type fixture struct {
	chain     *chain.Chain
	builder   *builder.Builder
	valKey    *crypto.Key
	sanctions *ofac.Registry
	at        time.Time
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	st := state.New()
	st.SetBalance(alice, types.Ether(10_000))
	st.SetBalance(badActor, types.Ether(10_000))
	st.SetBalance(crypto.AddressFromSeed("builder/test"), types.Ether(100_000))
	c := chain.New(chain.MainnetMergeConfig(), evm.NewEngine(), st)
	b := builder.New(builder.Profile{
		Name: "test", Keys: 1, MarginETH: 0.0001, MempoolCoverage: 1,
	}, rng.New(1))
	return &fixture{
		chain:     c,
		builder:   b,
		valKey:    crypto.NewKey([]byte("validator")),
		sanctions: ofac.DefaultList(),
		at:        time.Date(2023, 1, 10, 12, 0, 0, 0, time.UTC),
	}
}

func (f *fixture) newRelay(p Policy) *Relay {
	r := New(p, f.chain, f.sanctions)
	r.AllowBuilder(f.builder.PubKeys()[0], f.builder.VerificationKey(chain.MergeSlot+1))
	r.RegisterValidator(pbs.Registration{
		Pubkey:       f.valKey.Pub(),
		FeeRecipient: proposerFee,
		GasLimit:     30_000_000,
		VerifyKey:    f.valKey.VerificationKey(),
	})
	return r
}

// buildSubmission creates a valid submission paying the proposer.
func (f *fixture) buildSubmission(t *testing.T, txs []*types.Transaction) *pbs.Submission {
	t.Helper()
	args := builder.Args{
		Chain: f.chain, Slot: chain.MergeSlot + 1,
		ProposerPubkey:       f.valKey.Pub(),
		ProposerFeeRecipient: proposerFee,
		Pending:              txs,
	}
	res, ok := f.builder.Build(args)
	if !ok {
		t.Fatal("build failed")
	}
	return f.builder.Submission(args, res)
}

func transferTx(from types.Address, nonce, tipGwei uint64, to types.Address) *types.Transaction {
	return types.NewTransaction(nonce, from, to, types.Ether(1), 21_000,
		types.Gwei(200), types.Gwei(tipGwei), nil)
}

func honestPolicy() Policy {
	return Policy{Name: "TestRelay", Access: AccessPermissionless}
}

func TestSubmitAndServeFlow(t *testing.T) {
	f := newFixture(t)
	r := f.newRelay(honestPolicy())
	sub := f.buildSubmission(t, []*types.Transaction{transferTx(alice, 0, 50, bob)})
	if err := r.SubmitBlock(f.at, sub); err != nil {
		t.Fatalf("SubmitBlock: %v", err)
	}

	bid, err := r.GetHeader(chain.MergeSlot+1, f.valKey.Pub())
	if err != nil {
		t.Fatalf("GetHeader: %v", err)
	}
	if bid.Value != sub.Trace.Value {
		t.Errorf("bid value = %s, want %s", bid.Value, sub.Trace.Value)
	}
	if bid.Header.SealHash() != sub.Block.Hash() {
		t.Error("bid header is not the submitted block's")
	}

	signed := &pbs.SignedBlindedHeader{
		Slot: bid.Slot, BlockHash: bid.BlockHash,
		ProposerPubkey: f.valKey.Pub(),
		Signature:      pbs.SignBlindedHeader(f.valKey, bid.Slot, bid.BlockHash),
	}
	block, err := r.GetPayload(f.at, signed)
	if err != nil {
		t.Fatalf("GetPayload: %v", err)
	}
	if block.Hash() != sub.Block.Hash() {
		t.Error("revealed payload differs from escrow")
	}
	if len(r.Delivered()) != 1 || len(r.Received()) != 1 {
		t.Errorf("records: %d delivered, %d received", len(r.Delivered()), len(r.Received()))
	}
}

func TestUnknownBuilderRejected(t *testing.T) {
	f := newFixture(t)
	r := New(honestPolicy(), f.chain, f.sanctions) // no AllowBuilder
	r.RegisterValidator(pbs.Registration{
		Pubkey: f.valKey.Pub(), FeeRecipient: proposerFee, VerifyKey: f.valKey.VerificationKey(),
	})
	sub := f.buildSubmission(t, nil)
	if err := r.SubmitBlock(f.at, sub); !errors.Is(err, ErrUnknownBuilder) {
		t.Errorf("err = %v", err)
	}
}

func TestPermissionlessRegistration(t *testing.T) {
	f := newFixture(t)
	open := New(Policy{Name: "open", Access: AccessPermissionless}, f.chain, f.sanctions)
	if err := open.RegisterBuilder(f.builder.PubKeys()[0], f.builder.VerificationKey(0)); err != nil {
		t.Errorf("permissionless registration failed: %v", err)
	}
	closed := New(Policy{Name: "closed", Access: AccessInternal}, f.chain, f.sanctions)
	if err := closed.RegisterBuilder(f.builder.PubKeys()[0], f.builder.VerificationKey(0)); !errors.Is(err, ErrBuilderNotPermitted) {
		t.Errorf("internal relay accepted external builder: %v", err)
	}
}

func TestTamperedSignatureRejected(t *testing.T) {
	f := newFixture(t)
	r := f.newRelay(honestPolicy())
	sub := f.buildSubmission(t, nil)
	sub.Trace.Value = sub.Trace.Value.Add(types.Ether(1)) // lie after signing
	if err := r.SubmitBlock(f.at, sub); !errors.Is(err, ErrBadSignature) {
		t.Errorf("err = %v", err)
	}
}

func TestValueMismatchRejected(t *testing.T) {
	f := newFixture(t)
	r := f.newRelay(honestPolicy())
	// Builder signs a trace claiming more than the block pays.
	args := builder.Args{
		Chain: f.chain, Slot: chain.MergeSlot + 1,
		ProposerPubkey:       f.valKey.Pub(),
		ProposerFeeRecipient: proposerFee,
		Pending:              []*types.Transaction{transferTx(alice, 0, 50, bob)},
	}
	res, _ := f.builder.Build(args)
	res.Payment = res.Payment.Add(types.Ether(100)) // claim inflation
	lying := f.builder.Submission(args, res)
	if err := r.SubmitBlock(f.at, lying); !errors.Is(err, ErrValueMismatch) {
		t.Errorf("err = %v", err)
	}
	if r.Rejected() != 1 {
		t.Error("rejection not counted")
	}
}

func TestNoValueCheckWindowAdmitsLies(t *testing.T) {
	f := newFixture(t)
	p := honestPolicy()
	p.Faults.NoValueCheck = []Window{{From: f.at.Add(-time.Hour), To: f.at.Add(time.Hour)}}
	r := f.newRelay(p)

	args := builder.Args{
		Chain: f.chain, Slot: chain.MergeSlot + 1,
		ProposerPubkey:       f.valKey.Pub(),
		ProposerFeeRecipient: proposerFee,
		Pending:              []*types.Transaction{transferTx(alice, 0, 50, bob)},
	}
	res, _ := f.builder.Build(args)
	actual := res.Payment
	res.Payment = res.Payment.Add(types.Ether(100))
	lying := f.builder.Submission(args, res)
	if err := r.SubmitBlock(f.at, lying); err != nil {
		t.Fatalf("incident-window submission rejected: %v", err)
	}
	bid, err := r.GetHeader(chain.MergeSlot+1, f.valKey.Pub())
	if err != nil {
		t.Fatal(err)
	}
	// The relay now promises ~100 ETH more than the block delivers — the
	// Manifold/Eden mechanics of Table 4.
	if !bid.Value.Gt(actual.Add(types.Ether(99))) {
		t.Errorf("promised %s, actual %s", bid.Value, actual)
	}
}

func TestOFACFilteringAndLag(t *testing.T) {
	f := newFixture(t)
	p := Policy{Name: "Censoring", Access: AccessPermissionless, OFACCompliant: true}
	r := f.newRelay(p)

	// Block moving ETH from a sanctioned (Aug 2022 wave) address.
	sub := f.buildSubmission(t, []*types.Transaction{transferTx(badActor, 0, 50, bob)})
	if err := r.SubmitBlock(f.at, sub); !errors.Is(err, ErrCensored) {
		t.Errorf("err = %v, want ErrCensored", err)
	}

	// A relay whose blacklist never applied the wave lets it through.
	lagged := Policy{Name: "Laggy", Access: AccessPermissionless, OFACCompliant: true,
		Faults: Faults{BlacklistApplied: map[string]time.Time{
			"2022-08-08": neverApplied,
		}}}
	r2 := f.newRelay(lagged)
	if err := r2.SubmitBlock(f.at, sub); err != nil {
		t.Errorf("lagged relay rejected: %v", err)
	}

	// A non-censoring relay does not care at all.
	r3 := f.newRelay(honestPolicy())
	if err := r3.SubmitBlock(f.at, sub); err != nil {
		t.Errorf("non-censoring relay rejected: %v", err)
	}
}

func TestBestBidWins(t *testing.T) {
	f := newFixture(t)
	r := f.newRelay(honestPolicy())
	small := f.buildSubmission(t, []*types.Transaction{transferTx(alice, 0, 10, bob)})
	big := f.buildSubmission(t, []*types.Transaction{transferTx(alice, 0, 90, bob)})
	if err := r.SubmitBlock(f.at, small); err != nil {
		t.Fatal(err)
	}
	if err := r.SubmitBlock(f.at, big); err != nil {
		t.Fatal(err)
	}
	bid, err := r.GetHeader(chain.MergeSlot+1, f.valKey.Pub())
	if err != nil {
		t.Fatal(err)
	}
	if bid.BlockHash != big.Trace.BlockHash {
		t.Error("lower bid served")
	}
	if len(r.BuildersSeen(0, ^uint64(0))) != 1 {
		t.Error("BuildersSeen wrong")
	}
}

func TestOverPromise(t *testing.T) {
	f := newFixture(t)
	p := honestPolicy()
	p.Faults.OverPromiseProb = 1
	p.Faults.OverPromiseFrac = 0.10
	r := f.newRelay(p)
	sub := f.buildSubmission(t, []*types.Transaction{transferTx(alice, 0, 50, bob)})
	if err := r.SubmitBlock(f.at, sub); err != nil {
		t.Fatal(err)
	}
	bid, _ := r.GetHeader(chain.MergeSlot+1, f.valKey.Pub())
	if !bid.Value.Gt(sub.Trace.Value) {
		t.Error("over-promise did not inflate the bid")
	}
	signed := &pbs.SignedBlindedHeader{
		Slot: bid.Slot, BlockHash: bid.BlockHash,
		ProposerPubkey: f.valKey.Pub(),
		Signature:      pbs.SignBlindedHeader(f.valKey, bid.Slot, bid.BlockHash),
	}
	if _, err := r.GetPayload(f.at, signed); err != nil {
		t.Fatal(err)
	}
	// The data-API record carries the announced (inflated) value — what
	// Table 4 audits against the chain.
	if got := r.Delivered()[0].Trace.Value; got != bid.Value {
		t.Errorf("delivered record %s, announced %s", got, bid.Value)
	}
}

func TestGetPayloadRequiresProposerSignature(t *testing.T) {
	f := newFixture(t)
	r := f.newRelay(honestPolicy())
	sub := f.buildSubmission(t, nil)
	if err := r.SubmitBlock(f.at, sub); err != nil {
		t.Fatal(err)
	}
	imposter := crypto.NewKey([]byte("imposter"))
	signed := &pbs.SignedBlindedHeader{
		Slot: chain.MergeSlot + 1, BlockHash: sub.Trace.BlockHash,
		ProposerPubkey: f.valKey.Pub(),
		Signature:      pbs.SignBlindedHeader(imposter, chain.MergeSlot+1, sub.Trace.BlockHash),
	}
	if _, err := r.GetPayload(f.at, signed); !errors.Is(err, ErrBadSignature) {
		t.Errorf("err = %v", err)
	}
}

func TestNoBidForUnknownSlot(t *testing.T) {
	f := newFixture(t)
	r := f.newRelay(honestPolicy())
	if _, err := r.GetHeader(999, f.valKey.Pub()); !errors.Is(err, ErrNoBid) {
		t.Errorf("err = %v", err)
	}
}

func TestDefaultPoliciesShape(t *testing.T) {
	ps := DefaultPolicies()
	if len(ps) != 11 {
		t.Fatalf("policies = %d, want 11 (Table 2)", len(ps))
	}
	censoring := 0
	filtering := 0
	permissionless := 0
	for _, p := range ps {
		if p.OFACCompliant {
			censoring++
		}
		if p.MEVFilter {
			filtering++
		}
		if p.Access.Permissionless() {
			permissionless++
		}
	}
	// Table 3: Blocknative, bloXroute (R), Eden, Flashbots are
	// OFAC-compliant; only bloXroute (E) filters MEV.
	if censoring != 4 {
		t.Errorf("censoring relays = %d, want 4", censoring)
	}
	if filtering != 1 {
		t.Errorf("filtering relays = %d, want 1", filtering)
	}
	if permissionless != 6 {
		t.Errorf("permissionless relays = %d, want 6 (incl. Flashbots)", permissionless)
	}
	if _, ok := PolicyByName(ps, "Flashbots"); !ok {
		t.Error("Flashbots missing")
	}
	if _, ok := PolicyByName(ps, "nope"); ok {
		t.Error("phantom policy found")
	}
}

func TestActualPaymentConvention(t *testing.T) {
	f := newFixture(t)
	sub := f.buildSubmission(t, []*types.Transaction{transferTx(alice, 0, 50, bob)})
	got := ActualPayment(sub.Block, proposerFee)
	if got != sub.Trace.Value {
		t.Errorf("ActualPayment = %s, want %s", got, sub.Trace.Value)
	}
	// A block without the payment tx reports zero.
	if !ActualPayment(&types.Block{Header: &types.Header{}, Txs: nil}, proposerFee).IsZero() {
		t.Error("empty block has a payment")
	}
	_ = u256.Zero
}

func TestPruneSlot(t *testing.T) {
	f := newFixture(t)
	r := f.newRelay(honestPolicy())
	sub := f.buildSubmission(t, nil)
	if err := r.SubmitBlock(f.at, sub); err != nil {
		t.Fatal(err)
	}
	r.PruneSlot(sub.Trace.Slot + 1)
	if _, err := r.GetHeader(sub.Trace.Slot, f.valKey.Pub()); !errors.Is(err, ErrNoBid) {
		t.Error("pruned slot still served")
	}
	if len(r.Received()) != 1 {
		t.Error("prune erased API records")
	}
}

func TestWindowContains(t *testing.T) {
	w := Window{From: time.Unix(100, 0), To: time.Unix(200, 0)}
	if !w.Contains(time.Unix(100, 0)) || w.Contains(time.Unix(200, 0)) || w.Contains(time.Unix(99, 0)) {
		t.Error("window bounds wrong")
	}
}

func TestAccessString(t *testing.T) {
	if AccessInternal.String() == "" || Access(9).String() != "unknown" {
		t.Error("Access.String wrong")
	}
}

func TestMEVFilterRejectsAndPasses(t *testing.T) {
	// Build a block containing a sandwich via crafted swap transactions is
	// heavy; instead exercise the filter hook directly through a policy
	// with full coverage against a block whose receipts carry swap logs.
	// The integration-level check (bloXroute Ethical gap) lives in the
	// core integration tests; here we verify the wrong-fee-recipient and
	// unknown-payload guards around the same flow.
	f := newFixture(t)
	r := f.newRelay(honestPolicy())

	// Wrong proposer fee recipient in the trace.
	args := builder.Args{
		Chain: f.chain, Slot: chain.MergeSlot + 1,
		ProposerPubkey:       f.valKey.Pub(),
		ProposerFeeRecipient: crypto.AddressFromSeed("someone-else"),
	}
	res, _ := f.builder.Build(args)
	sub := f.builder.Submission(args, res)
	if err := r.SubmitBlock(f.at, sub); !errors.Is(err, ErrWrongFeeRecipient) {
		t.Errorf("err = %v, want ErrWrongFeeRecipient", err)
	}

	// Unknown payload hash at GetPayload.
	signed := &pbs.SignedBlindedHeader{
		Slot: 1, BlockHash: crypto.Keccak256([]byte("ghost")),
		ProposerPubkey: f.valKey.Pub(),
		Signature:      pbs.SignBlindedHeader(f.valKey, 1, crypto.Keccak256([]byte("ghost"))),
	}
	if _, err := r.GetPayload(f.at, signed); !errors.Is(err, ErrUnknownPayload) {
		t.Errorf("err = %v, want ErrUnknownPayload", err)
	}

	// Unknown proposer at GetPayload.
	stranger := crypto.NewKey([]byte("stranger"))
	signed.ProposerPubkey = stranger.Pub()
	if _, err := r.GetPayload(f.at, signed); !errors.Is(err, ErrUnknownProposer) {
		t.Errorf("err = %v, want ErrUnknownProposer", err)
	}
}

func TestSanctionedViaTokenTransferLog(t *testing.T) {
	// The paper scans token Transfer logs too: a block whose only sanctioned
	// touch is an ERC-20 transfer to a designated address must be censored.
	f := newFixture(t)
	p := Policy{Name: "Censoring", Access: AccessPermissionless, OFACCompliant: true}
	r := f.newRelay(p)

	// Craft a token transfer from alice to a sanctioned address by running
	// it through a real token contract registered on the fixture chain.
	tok := defi.NewToken("USDC")
	f.chain.Engine().Register(tok.Addr, tok)
	tok.Mint(f.chain.State(), alice, types.Ether(100))
	f.chain.State().ClearJournal()

	badTx := types.NewTransaction(0, alice, tok.Addr, u256.Zero, 52_000,
		types.Gwei(200), types.Gwei(2),
		defi.TokenTransferCalldata(badActor, types.Ether(5)))
	sub := f.buildSubmission(t, []*types.Transaction{badTx})
	if err := r.SubmitBlock(f.at, sub); !errors.Is(err, ErrCensored) {
		t.Errorf("err = %v, want ErrCensored (token-log scan)", err)
	}
}

func TestBuilderAccessors(t *testing.T) {
	f := newFixture(t)
	r := f.newRelay(honestPolicy())
	if !r.KnowsBuilder(f.builder.PubKeys()[0]) {
		t.Error("vetted builder unknown")
	}
	if r.KnowsBuilder(crypto.NewKey([]byte("nobody")).Pub()) {
		t.Error("stranger known")
	}
	if got := r.Registrations(); len(got) != 1 {
		t.Errorf("registrations = %d", len(got))
	}
}

func TestBuildersSeenRange(t *testing.T) {
	f := newFixture(t)
	r := f.newRelay(honestPolicy())
	sub := f.buildSubmission(t, nil)
	if err := r.SubmitBlock(f.at, sub); err != nil {
		t.Fatal(err)
	}
	if got := r.BuildersSeen(sub.Trace.Slot+1, sub.Trace.Slot+10); len(got) != 0 {
		t.Error("out-of-range slot matched")
	}
	if got := r.BuildersSeen(sub.Trace.Slot, sub.Trace.Slot); len(got) != 1 {
		t.Error("in-range slot missed")
	}
}
