package relay

import "time"

// NeverApplied marks an OFAC wave a relay never enforced during the
// measurement window. Scenario knobs (internal/cli, the fleet grid) use it
// to declare "this wave never reaches the blacklist" overrides.
var NeverApplied = time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC)

// neverApplied is the historical internal alias.
var neverApplied = NeverApplied

// Incident timestamps from the paper.
var (
	// ManifoldIncident is 2022-10-15, when a builder noticed Manifold was
	// not checking block rewards and submitted mispriced blocks (184 made
	// it on chain; proposers got nothing).
	ManifoldIncident = time.Date(2022, 10, 15, 0, 0, 0, 0, time.UTC)
	// EdenIncidentDay covers block 15,703,347 (announced 278.29 ETH,
	// delivered 0.16 ETH).
	EdenIncidentDay = time.Date(2022, 10, 8, 0, 0, 0, 0, time.UTC)
	// FlashbotsNovApplied is when Flashbots' blacklist caught up with the
	// 2022-11-08 OFAC update.
	FlashbotsNovApplied = time.Date(2022, 11, 10, 0, 0, 0, 0, time.UTC)
)

// DefaultPolicies returns the eleven relays of Table 2 with the policy
// matrix of Table 3 and the faults Sections 5.2 and 6 document.
func DefaultPolicies() []Policy {
	day := 24 * time.Hour
	return []Policy{
		{
			Name: "Aestus", Endpoint: "https://aestus.live", Fork: "MEV Boost",
			Access: AccessPermissionless,
			// The only relay Table 4 shows delivering 100.000000% of the
			// promised value — tiny over-promise share, zero size.
			Faults: Faults{OverPromiseProb: 0.0001, OverPromiseFrac: 0},
		},
		{
			Name: "Blocknative", Endpoint: "https://builder-relay-mainnet.blocknative.com",
			Fork: "Dreamboat", Access: AccessInternal, OFACCompliant: true,
			Faults: Faults{
				OverPromiseProb: 0.007, OverPromiseFrac: 0.005,
				BlacklistApplied: map[string]time.Time{
					"2022-11-08": ofacWavePlus("2022-11-08", 2*day),
					"2023-02-01": ofacWavePlus("2023-02-01", 3*day),
				},
			},
		},
		{
			Name: "bloXroute (Ethical)", Endpoint: "https://bloxroute.ethical.blxrbdn.com",
			Fork: "MEV Boost", Access: AccessInternalExternal, MEVFilter: true,
			Faults: Faults{
				SandwichFilterCoverage: 0.85, // the paper's "significant gaps"
				OverPromiseProb:        0.009, OverPromiseFrac: 0.025,
			},
		},
		{
			Name: "bloXroute (MaxProfit)", Endpoint: "https://bloxroute.max-profit.blxrbdn.com",
			Fork: "MEV Boost", Access: AccessInternalExternal,
			Faults: Faults{OverPromiseProb: 0.0055, OverPromiseFrac: 0.004},
		},
		{
			Name: "bloXroute (Regulated)", Endpoint: "https://bloxroute.regulated.blxrbdn.com",
			Fork: "MEV Boost", Access: AccessInternalExternal, OFACCompliant: true,
			Faults: Faults{
				OverPromiseProb: 0.0003, OverPromiseFrac: 0.01,
				BlacklistApplied: map[string]time.Time{
					"2022-11-08": ofacWavePlus("2022-11-08", 1*day),
					"2023-02-01": ofacWavePlus("2023-02-01", 2*day),
				},
			},
		},
		{
			Name: "Eden", Endpoint: "https://relay.edennetwork.io",
			Fork: "MEV Boost", Access: AccessInternal, OFACCompliant: true,
			Faults: Faults{
				// The single-day value-check outage behind the 278 ETH
				// shortfall.
				NoValueCheck:    []Window{{From: EdenIncidentDay, To: EdenIncidentDay.Add(day)}},
				OverPromiseProb: 0.0001, OverPromiseFrac: 0.002,
				BlacklistApplied: map[string]time.Time{
					"2022-11-08": ofacWavePlus("2022-11-08", 2*day),
					"2023-02-01": ofacWavePlus("2023-02-01", 4*day),
				},
			},
		},
		{
			Name: "Flashbots", Endpoint: "https://boost-relay.flashbots.net",
			Fork: "MEV Boost", Access: AccessInternalPermissionless, OFACCompliant: true,
			Faults: Faults{
				OverPromiseProb: 0.0001, OverPromiseFrac: 0.002,
				BlacklistApplied: map[string]time.Time{
					"2022-11-08": FlashbotsNovApplied, // applied 2 days late
					"2023-02-01": neverApplied,        // still missing on 2023-05-01
				},
			},
		},
		{
			Name: "GnosisDAO", Endpoint: "https://agnostic-relay.net",
			Fork: "MEV Boost", Access: AccessPermissionless,
			Faults: Faults{OverPromiseProb: 0.0018, OverPromiseFrac: 0.0007},
		},
		{
			Name: "Manifold", Endpoint: "https://mainnet-relay.securerpc.com",
			Fork: "MEV Boost", Access: AccessPermissionless,
			Faults: Faults{
				// No reward checking until the 2022-10-15 post-mortem.
				NoValueCheck: []Window{{
					From: time.Date(2022, 9, 15, 0, 0, 0, 0, time.UTC),
					To:   ManifoldIncident.Add(day),
				}},
				OverPromiseProb: 0.014, OverPromiseFrac: 0.02,
			},
		},
		{
			Name: "Relayooor", Endpoint: "https://relayooor.wtf",
			Fork: "MEV Boost", Access: AccessPermissionless,
			Faults: Faults{OverPromiseProb: 0.0042, OverPromiseFrac: 0.0016},
		},
		{
			Name: "UltraSound", Endpoint: "https://relay.ultrasound.money",
			Fork: "MEV Boost", Access: AccessPermissionless,
			Faults: Faults{OverPromiseProb: 0.0019, OverPromiseFrac: 0.0011},
		},
	}
}

// ofacWavePlus returns the effective enforcement time for a wave with an
// extra lag on top of the day-after rule.
func ofacWavePlus(wave string, lag time.Duration) time.Time {
	t, err := time.Parse("2006-01-02", wave)
	if err != nil {
		panic(err)
	}
	return t.Add(24 * time.Hour).Add(lag)
}

// PolicyByName finds a policy in a list.
func PolicyByName(policies []Policy, name string) (Policy, bool) {
	for _, p := range policies {
		if p.Name == name {
			return p, true
		}
	}
	return Policy{}, false
}
