package atomicio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.csv")
	want := []byte("day,value\n0,1\n")
	if err := WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if IsTemp(e.Name()) {
			t.Errorf("temp debris left behind: %s", e.Name())
		}
	}
}

func TestWriteFileReplacesExistingAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("content = %q", got)
	}
}

// TestWriteFileSyncsParentDir asserts the rename is made durable: the
// parent directory handle must be opened and fsynced after the rename, not
// just the file's own data. The hook records the directory it is asked to
// sync and verifies the published file is already visible under its final
// name at sync time (sync-after-rename, never before).
func TestWriteFileSyncsParentDir(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "published")

	orig := syncDir
	defer func() { syncDir = orig }()

	var synced []string
	syncDir = func(d string) error {
		if _, err := os.Stat(path); err != nil {
			t.Errorf("dir sync ran before the rename published %s: %v", path, err)
		}
		synced = append(synced, filepath.Clean(d))
		return orig(d)
	}

	if err := WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 || synced[0] != filepath.Clean(dir) {
		t.Fatalf("synced dirs = %v, want exactly [%s]", synced, dir)
	}
}

// A failing directory sync must surface: the write is published but not yet
// crash-durable, and silent success here would undermine the durability
// model's claim that a returned nil means "survives power loss".
func TestWriteFileReportsDirSyncFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")

	orig := syncDir
	defer func() { syncDir = orig }()
	boom := errors.New("dir sync failed")
	syncDir = func(string) error { return boom }

	err := WriteFile(path, []byte("x"), 0o644)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped dir-sync failure", err)
	}
	if !strings.Contains(err.Error(), "sync dir") {
		t.Errorf("error %q does not name the failing step", err)
	}
	// The file itself is still in place — only durability is in doubt.
	if _, statErr := os.Stat(path); statErr != nil {
		t.Errorf("published file missing after dir-sync failure: %v", statErr)
	}
}

// WriteFile with a bare file name (no directory component) must sync ".".
func TestWriteFileBareNameSyncsDot(t *testing.T) {
	orig := syncDir
	defer func() { syncDir = orig }()
	var got string
	syncDir = func(d string) error { got = d; return orig(d) }

	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)

	if err := WriteFile("bare", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got != "." {
		t.Fatalf("synced %q, want %q", got, ".")
	}
}
