// Package atomicio provides crash-safe file writes. Every durable artifact
// of the pipeline — figure CSVs, the artifact manifest, simulation
// checkpoints, crawler resume state — goes through WriteFile, so a crash or
// kill mid-write can never leave a truncated file that looks finished: the
// data lands in a temp file in the target directory and only a successful
// rename (atomic on POSIX within one filesystem) publishes it under the
// final name.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// TempPrefix marks in-flight temp files; verification treats leftovers as
// stale debris from a crashed writer.
const TempPrefix = ".tmp-"

// syncDir flushes a directory's entries to stable storage. The rename that
// publishes an atomic write is itself a directory mutation: without this
// fsync a power failure can roll the directory back to the pre-rename
// state even though the file's own data was synced, silently unpublishing
// a "durable" artifact. Hookable so tests can observe (and fail) the sync
// without pulling power.
var syncDir = func(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// WriteFile writes data to path atomically and durably: temp file in the
// same directory, write, sync, close, rename, then fsync of the parent
// directory so the rename survives power loss. On any failure the temp
// file is removed and path is left untouched (either absent or holding its
// previous complete content).
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, TempPrefix+base+"-*")
	if err != nil {
		return fmt.Errorf("atomicio: create temp for %s: %w", path, err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(fmt.Errorf("atomicio: write %s: %w", path, err))
	}
	// Sync before rename: otherwise a power loss can publish an empty file
	// under the final name on some filesystems.
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("atomicio: sync %s: %w", path, err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if err := os.Chmod(tmp, perm); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicio: chmod %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicio: rename to %s: %w", path, err)
	}
	// The file is in place either way; a failed directory sync means its
	// publication is not yet crash-durable, which callers must hear about.
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("atomicio: sync dir %s: %w", dir, err)
	}
	return nil
}

// IsTemp reports whether a file name is an in-flight temp file left behind
// by a crashed WriteFile.
func IsTemp(name string) bool {
	return len(name) >= len(TempPrefix) && name[:len(TempPrefix)] == TempPrefix
}
