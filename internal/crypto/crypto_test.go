package crypto

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestKeccak256Deterministic(t *testing.T) {
	a := Keccak256([]byte("hello"))
	b := Keccak256([]byte("hello"))
	if a != b {
		t.Error("same input hashed to different digests")
	}
	if a == Keccak256([]byte("world")) {
		t.Error("different inputs collided")
	}
}

func TestKeccak256LengthFraming(t *testing.T) {
	// The multi-argument form must not be concatenation-ambiguous:
	// H("ab","c") != H("a","bc").
	if Keccak256([]byte("ab"), []byte("c")) == Keccak256([]byte("a"), []byte("bc")) {
		t.Error("length framing missing: split point does not affect digest")
	}
}

func TestSignVerify(t *testing.T) {
	k := NewKey([]byte("validator-1"))
	msg := []byte("block header bytes")
	sig := k.Sign(msg)
	if !Verify(k.VerificationKey(), msg, sig) {
		t.Error("valid signature rejected")
	}
	if Verify(k.VerificationKey(), []byte("tampered"), sig) {
		t.Error("signature verified for different message")
	}
	other := NewKey([]byte("validator-2"))
	if Verify(other.VerificationKey(), msg, sig) {
		t.Error("signature verified under another key")
	}
	var zero Signature
	if Verify(k.VerificationKey(), msg, zero) {
		t.Error("zero signature verified")
	}
}

func TestSignVerifyQuick(t *testing.T) {
	f := func(seed, msg []byte) bool {
		k := NewKey(seed)
		return Verify(k.VerificationKey(), msg, k.Sign(msg))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistinctSeedsDistinctKeys(t *testing.T) {
	seen := map[PubKey]bool{}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		seed := make([]byte, 16)
		r.Read(seed)
		k := NewKey(seed)
		if seen[k.Pub()] {
			t.Fatal("duplicate public key from distinct seed")
		}
		seen[k.Pub()] = true
	}
}

func TestZeroKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sign on zero Key did not panic")
		}
	}()
	var k Key
	k.Sign([]byte("x"))
}

func TestAddressDerivation(t *testing.T) {
	k := NewKey([]byte("builder"))
	a1 := AddressFromPub(k.Pub())
	a2 := AddressFromPub(k.Pub())
	if a1 != a2 {
		t.Error("address derivation not deterministic")
	}
	if a1.IsZero() {
		t.Error("derived address is zero")
	}
	if AddressFromSeed("x") == AddressFromSeed("y") {
		t.Error("seed addresses collided")
	}
}

func TestAddressHexRoundTrip(t *testing.T) {
	f := func(seedBytes []byte) bool {
		a := AddressFromSeed(string(seedBytes))
		parsed, err := ParseAddress(a.Hex())
		return err == nil && parsed == a
	}
	vals := func(args []reflect.Value, r *rand.Rand) {
		b := make([]byte, r.Intn(20))
		r.Read(b)
		args[0] = reflect.ValueOf(b)
	}
	if err := quick.Check(f, &quick.Config{Values: vals}); err != nil {
		t.Error(err)
	}
}

func TestParseAddressErrors(t *testing.T) {
	for _, s := range []string{"", "0x12", "0x" + strings.Repeat("zz", 20), strings.Repeat("ab", 21)} {
		if _, err := ParseAddress(s); err == nil {
			t.Errorf("ParseAddress(%q) succeeded, want error", s)
		}
	}
	want := "0x0b95993a39a363d99280ac950f5e4536ab5c5566"
	a, err := ParseAddress(want)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hex() != want {
		t.Errorf("Hex round trip: %s != %s", a.Hex(), want)
	}
}

func TestParseHashAndPubKey(t *testing.T) {
	h := Keccak256([]byte("x"))
	back, err := ParseHash(h.Hex())
	if err != nil || back != h {
		t.Errorf("hash round trip failed: %v", err)
	}
	if _, err := ParseHash("0x1234"); err == nil {
		t.Error("short hash accepted")
	}
	k := NewKey([]byte("p"))
	pub, err := ParsePubKey(k.Pub().Hex())
	if err != nil || pub != k.Pub() {
		t.Errorf("pubkey round trip failed: %v", err)
	}
	if _, err := ParsePubKey("0xab"); err == nil {
		t.Error("short pubkey accepted")
	}
}

func TestStringShortForms(t *testing.T) {
	h := Keccak256([]byte("x"))
	if len(h.String()) >= len(h.Hex()) {
		t.Error("Hash.String should be shorter than Hex")
	}
	a := AddressFromSeed("x")
	if len(a.String()) >= len(a.Hex()) {
		t.Error("Address.String should be shorter than Hex")
	}
}

func BenchmarkKeccak256(b *testing.B) {
	data := make([]byte, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Keccak256(data)
	}
}

func BenchmarkSign(b *testing.B) {
	k := NewKey([]byte("bench"))
	msg := make([]byte, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Sign(msg)
	}
}
