// Package crypto supplies the cryptographic primitives the PBS ecosystem
// depends on: a 256-bit hash, validator/builder keypairs, and a
// sign/verify scheme for blinded block headers.
//
// Substitution note (see DESIGN.md): mainnet Ethereum uses Keccak-256 and
// BLS12-381. The standard library provides neither, and nothing in the
// paper's analysis depends on their algebraic structure — only on hash
// uniqueness and on signatures being unforgeable-in-simulation and
// verifiable. Hash is therefore SHA-256 with a domain tag, and signatures
// are HMAC-SHA-256 under a secret derived from the private key, verifiable
// by anyone holding the public key because the simulation derives the
// public key from the private key with a one-way hash and verification
// recomputes the tag via a registry-free construction described below.
//
// Verification without shared secrets: a Signature over msg is
// tag = H(priv || msg). A verifier cannot recompute that without priv, so
// instead signatures here carry tag plus a proof binding priv to pub:
// pub = H("pub" || priv). Verify recomputes nothing secret; it checks
// tag == H(sigSecret(pub, priv-commitment) ...). To keep the simulation
// honest without real asymmetric crypto, Verify uses an internal witness
// the Signature carries: the signer's priv-derived verification key
// vk = H("vk" || priv), published at key generation alongside pub. Then
// tag = HMAC(vk, msg). Anyone holding the published vk can verify, and
// forging for a pub without its vk requires inverting H. Within the
// simulator this provides exactly the guarantee the protocol needs:
// relays can check proposer signatures, and nobody can sign for a key
// they did not generate.
package crypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// HashSize is the byte length of Hash.
const HashSize = 32

// Hash is a 256-bit digest.
type Hash [HashSize]byte

// Keccak256 hashes data with the simulation's 256-bit hash. The name keeps
// call sites reading like Ethereum code; the implementation is domain-tagged
// SHA-256 (see the package comment).
func Keccak256(data ...[]byte) Hash {
	h := sha256.New()
	h.Write([]byte("pbslab/keccak"))
	for _, d := range data {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(d)))
		h.Write(n[:])
		h.Write(d)
	}
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// Hex renders the hash 0x-prefixed.
func (h Hash) Hex() string { return "0x" + hex.EncodeToString(h[:]) }

// String implements fmt.Stringer with a shortened form for logs.
func (h Hash) String() string { return "0x" + hex.EncodeToString(h[:6]) + "…" }

// IsZero reports whether the hash is all zeros.
func (h Hash) IsZero() bool { return h == Hash{} }

// PubKeySize is the byte length of PubKey, matching BLS12-381 G1 (48 bytes)
// so relay API payloads have realistic shapes.
const PubKeySize = 48

// PubKey identifies a validator or builder on the consensus layer.
type PubKey [PubKeySize]byte

// Hex renders the public key 0x-prefixed.
func (p PubKey) Hex() string { return "0x" + hex.EncodeToString(p[:]) }

// String implements fmt.Stringer with a shortened form for logs.
func (p PubKey) String() string { return "0x" + hex.EncodeToString(p[:6]) + "…" }

// SignatureSize is the byte length of Signature, matching BLS12-381 G2.
const SignatureSize = 96

// Signature is a signature over a message digest.
type Signature [SignatureSize]byte

// IsZero reports whether the signature is all zeros.
func (s Signature) IsZero() bool { return s == Signature{} }

// Key is a signing keypair. Generate keys with NewKey; the zero value
// cannot sign.
type Key struct {
	priv Hash
	pub  PubKey
	vk   Hash // published verification key, see package comment
}

// NewKey derives a keypair deterministically from a seed. Distinct seeds
// yield distinct keys (up to hash collisions).
func NewKey(seed []byte) *Key {
	priv := Keccak256([]byte("priv"), seed)
	var k Key
	k.priv = priv
	pubDigest := Keccak256([]byte("pub"), priv[:])
	copy(k.pub[:], pubDigest[:])
	// Widen to 48 bytes with a second digest so the key looks like BLS.
	pubTail := Keccak256([]byte("pub2"), priv[:])
	copy(k.pub[HashSize:], pubTail[:PubKeySize-HashSize])
	k.vk = Keccak256([]byte("vk"), priv[:])
	return &k
}

// Pub returns the public key.
func (k *Key) Pub() PubKey { return k.pub }

// VerificationKey returns the published verification key distributed with
// the public key at registration time.
func (k *Key) VerificationKey() Hash { return k.vk }

// Sign produces a signature over msg.
func (k *Key) Sign(msg []byte) Signature {
	if k == nil || k.priv.IsZero() {
		panic("crypto: Sign on zero Key")
	}
	mac := hmac.New(sha256.New, k.vk[:])
	mac.Write(msg)
	var sig Signature
	copy(sig[:], mac.Sum(nil))
	// Fill the remaining bytes with a keyed expansion so signatures have the
	// right width and remain unique per (key, msg).
	ext := Keccak256([]byte("sigext"), k.vk[:], msg)
	copy(sig[HashSize:], ext[:])
	ext2 := Keccak256([]byte("sigext2"), k.vk[:], msg)
	copy(sig[2*HashSize:], ext2[:])
	return sig
}

// Verify checks sig over msg for the holder of vk (the verification key
// published alongside pub).
func Verify(vk Hash, msg []byte, sig Signature) bool {
	mac := hmac.New(sha256.New, vk[:])
	mac.Write(msg)
	var want [HashSize]byte
	copy(want[:], mac.Sum(nil))
	return hmac.Equal(want[:], sig[:HashSize])
}

// AddressSize is the byte length of an execution-layer address.
const AddressSize = 20

// Address is an execution-layer account address.
type Address [AddressSize]byte

// AddressFromPub derives the execution-layer address controlled by a key,
// mirroring Ethereum's keccak(pubkey)[12:] rule.
func AddressFromPub(p PubKey) Address {
	digest := Keccak256([]byte("addr"), p[:])
	var a Address
	copy(a[:], digest[HashSize-AddressSize:])
	return a
}

// AddressFromSeed derives a deterministic address for simulation actors that
// never sign anything (EOAs, contracts).
func AddressFromSeed(seed string) Address {
	digest := Keccak256([]byte("addrseed"), []byte(seed))
	var a Address
	copy(a[:], digest[HashSize-AddressSize:])
	return a
}

// Hex renders the address 0x-prefixed.
func (a Address) Hex() string { return "0x" + hex.EncodeToString(a[:]) }

// String implements fmt.Stringer with a shortened form for logs.
func (a Address) String() string { return "0x" + hex.EncodeToString(a[:4]) + "…" }

// IsZero reports whether the address is all zeros.
func (a Address) IsZero() bool { return a == Address{} }

// ParseAddress parses an 0x-prefixed 20-byte hex address.
func ParseAddress(s string) (Address, error) {
	var a Address
	if len(s) >= 2 && (s[:2] == "0x" || s[:2] == "0X") {
		s = s[2:]
	}
	if len(s) != 2*AddressSize {
		return a, fmt.Errorf("crypto: address must be %d hex chars, got %d", 2*AddressSize, len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return a, fmt.Errorf("crypto: invalid address hex: %w", err)
	}
	copy(a[:], b)
	return a, nil
}

// MustParseAddress is ParseAddress but panics on error; for constants.
func MustParseAddress(s string) Address {
	a, err := ParseAddress(s)
	if err != nil {
		panic(err)
	}
	return a
}

// ParseHash parses an 0x-prefixed 32-byte hex digest.
func ParseHash(s string) (Hash, error) {
	var h Hash
	if len(s) >= 2 && (s[:2] == "0x" || s[:2] == "0X") {
		s = s[2:]
	}
	if len(s) != 2*HashSize {
		return h, fmt.Errorf("crypto: hash must be %d hex chars, got %d", 2*HashSize, len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("crypto: invalid hash hex: %w", err)
	}
	copy(h[:], b)
	return h, nil
}

// ParsePubKey parses an 0x-prefixed 48-byte hex public key.
func ParsePubKey(s string) (PubKey, error) {
	var p PubKey
	if len(s) >= 2 && (s[:2] == "0x" || s[:2] == "0X") {
		s = s[2:]
	}
	if len(s) != 2*PubKeySize {
		return p, fmt.Errorf("crypto: pubkey must be %d hex chars, got %d", 2*PubKeySize, len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return p, fmt.Errorf("crypto: invalid pubkey hex: %w", err)
	}
	copy(p[:], b)
	return p, nil
}
