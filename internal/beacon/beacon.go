// Package beacon models the consensus layer as the paper describes it:
// 12-second slots grouped into 32-slot epochs, a validator registry, a
// proposer schedule announced at least one epoch ahead, and the fixed Beacon
// rewards (which the paper's profit analysis deliberately excludes, but
// which the simulator still accrues for completeness).
package beacon

import (
	"fmt"

	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/rng"
	"github.com/ethpbs/pbslab/internal/types"
)

// Protocol constants.
const (
	// SlotsPerEpoch is the Beacon chain epoch length.
	SlotsPerEpoch = 32
	// StakeETH is the stake locked per validator.
	StakeETH = 32
)

// Fixed rewards, in ETH, per the paper's Section 2.1.
const (
	// ProposerRewardETH is the consensus reward for proposing a block.
	ProposerRewardETH = 0.034
	// AttesterRewardETH is the committee member reward per attested block.
	AttesterRewardETH = 0.0000125
)

// EpochOf returns the epoch containing slot.
func EpochOf(slot uint64) uint64 { return slot / SlotsPerEpoch }

// EpochStart returns the first slot of an epoch.
func EpochStart(epoch uint64) uint64 { return epoch * SlotsPerEpoch }

// Validator is one staked consensus participant.
type Validator struct {
	Index uint64
	Key   *crypto.Key
	// FeeRecipient is the execution-layer address receiving the validator's
	// block value (set in the validator's client configuration).
	FeeRecipient types.Address
}

// Pub returns the validator's consensus public key.
func (v *Validator) Pub() types.PubKey { return v.Key.Pub() }

// Registry is the validator set. The set is fixed at construction; the
// paper's window is short enough that churn is irrelevant to its analyses.
type Registry struct {
	validators []*Validator
	byPub      map[types.PubKey]*Validator
}

// NewRegistry creates n validators with deterministic keys derived from the
// label. Fee recipients default to addresses derived from each key and can
// be reassigned by the validator operator model.
func NewRegistry(label string, n int) *Registry {
	r := &Registry{byPub: make(map[types.PubKey]*Validator, n)}
	for i := 0; i < n; i++ {
		key := crypto.NewKey([]byte(fmt.Sprintf("%s/validator/%d", label, i)))
		v := &Validator{
			Index:        uint64(i),
			Key:          key,
			FeeRecipient: crypto.AddressFromPub(key.Pub()),
		}
		r.validators = append(r.validators, v)
		r.byPub[v.Pub()] = v
	}
	return r
}

// Len returns the validator count.
func (r *Registry) Len() int { return len(r.validators) }

// ByIndex returns validator i.
func (r *Registry) ByIndex(i uint64) *Validator { return r.validators[i] }

// ByPub looks a validator up by public key.
func (r *Registry) ByPub(p types.PubKey) (*Validator, bool) {
	v, ok := r.byPub[p]
	return v, ok
}

// All returns the validators in index order. Callers must not mutate the
// slice.
func (r *Registry) All() []*Validator { return r.validators }

// Schedule assigns proposers to slots, RANDAO-style: a deterministic
// per-epoch seed selects proposers, and assignments are computable one full
// epoch ahead (the paper notes proposers are known >= 6.4 minutes early,
// which is what lets builders and relays prepare for specific proposers).
type Schedule struct {
	registry *Registry
	seed     uint64
}

// NewSchedule creates a proposer schedule over the registry.
func NewSchedule(registry *Registry, seed uint64) *Schedule {
	return &Schedule{registry: registry, seed: seed}
}

// ProposerIndex returns the index of the proposer for slot.
func (s *Schedule) ProposerIndex(slot uint64) uint64 {
	epoch := EpochOf(slot)
	// Draw from an epoch-keyed stream; each slot takes one draw, so the
	// whole epoch's assignment is fixed as soon as the epoch seed is.
	r := rng.New(s.seed).Fork(fmt.Sprintf("epoch/%d", epoch))
	idx := uint64(0)
	for sl := EpochStart(epoch); sl <= slot; sl++ {
		idx = r.Uint64n(uint64(s.registry.Len()))
	}
	return idx
}

// Proposer returns the validator proposing at slot.
func (s *Schedule) Proposer(slot uint64) *Validator {
	return s.registry.ByIndex(s.ProposerIndex(slot))
}

// AnnouncedAt returns the earliest slot at which the assignment for slot is
// public: the start of the previous epoch's final slot, i.e. one full epoch
// ahead.
func AnnouncedAt(slot uint64) uint64 {
	epoch := EpochOf(slot)
	if epoch == 0 {
		return 0
	}
	return EpochStart(epoch - 1)
}

// Ledger accrues the fixed consensus rewards. The measurement pipeline
// ignores these (they are protocol constants, orthogonal to PBS) but the
// simulation keeps the books.
type Ledger struct {
	proposerRewards map[uint64]types.Wei // validator index -> accrued
	proposed        map[uint64]uint64    // validator index -> block count
	totalProposed   uint64
}

// NewLedger returns an empty rewards ledger.
func NewLedger() *Ledger {
	return &Ledger{
		proposerRewards: map[uint64]types.Wei{},
		proposed:        map[uint64]uint64{},
	}
}

// RecordProposal accrues the proposer reward for a successful proposal.
func (l *Ledger) RecordProposal(v *Validator) {
	l.proposerRewards[v.Index] = l.proposerRewards[v.Index].Add(types.Ether(ProposerRewardETH))
	l.proposed[v.Index]++
	l.totalProposed++
}

// Proposals returns how many blocks validator index proposed.
func (l *Ledger) Proposals(index uint64) uint64 { return l.proposed[index] }

// Accrued returns the consensus rewards accrued by validator index.
func (l *Ledger) Accrued(index uint64) types.Wei { return l.proposerRewards[index] }

// TotalProposals returns the number of proposals recorded.
func (l *Ledger) TotalProposals() uint64 { return l.totalProposed }

// LedgerSnapshot is the Ledger's serializable state for checkpointing.
type LedgerSnapshot struct {
	ProposerRewards map[uint64]types.Wei
	Proposed        map[uint64]uint64
	TotalProposed   uint64
}

// Export snapshots the ledger.
func (l *Ledger) Export() LedgerSnapshot {
	sn := LedgerSnapshot{
		ProposerRewards: make(map[uint64]types.Wei, len(l.proposerRewards)),
		Proposed:        make(map[uint64]uint64, len(l.proposed)),
		TotalProposed:   l.totalProposed,
	}
	for k, v := range l.proposerRewards {
		sn.ProposerRewards[k] = v
	}
	for k, v := range l.proposed {
		sn.Proposed[k] = v
	}
	return sn
}

// Restore replaces the ledger's books from a snapshot.
func (l *Ledger) Restore(sn LedgerSnapshot) {
	l.proposerRewards = make(map[uint64]types.Wei, len(sn.ProposerRewards))
	l.proposed = make(map[uint64]uint64, len(sn.Proposed))
	for k, v := range sn.ProposerRewards {
		l.proposerRewards[k] = v
	}
	for k, v := range sn.Proposed {
		l.proposed[k] = v
	}
	l.totalProposed = sn.TotalProposed
}
