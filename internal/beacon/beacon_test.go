package beacon

import (
	"math"
	"testing"

	"github.com/ethpbs/pbslab/internal/types"
)

func TestEpochMath(t *testing.T) {
	if EpochOf(0) != 0 || EpochOf(31) != 0 || EpochOf(32) != 1 {
		t.Error("EpochOf wrong")
	}
	if EpochStart(3) != 96 {
		t.Error("EpochStart wrong")
	}
}

func TestRegistryDeterministic(t *testing.T) {
	a := NewRegistry("test", 10)
	b := NewRegistry("test", 10)
	if a.Len() != 10 {
		t.Fatalf("Len = %d", a.Len())
	}
	for i := uint64(0); i < 10; i++ {
		if a.ByIndex(i).Pub() != b.ByIndex(i).Pub() {
			t.Fatal("registry not deterministic")
		}
	}
	c := NewRegistry("other", 10)
	if a.ByIndex(0).Pub() == c.ByIndex(0).Pub() {
		t.Error("different labels share keys")
	}
}

func TestRegistryLookup(t *testing.T) {
	r := NewRegistry("test", 5)
	v := r.ByIndex(3)
	got, ok := r.ByPub(v.Pub())
	if !ok || got.Index != 3 {
		t.Error("ByPub lookup failed")
	}
	if len(r.All()) != 5 {
		t.Error("All length wrong")
	}
	if v.FeeRecipient.IsZero() {
		t.Error("default fee recipient unset")
	}
}

func TestScheduleDeterministicAndStable(t *testing.T) {
	r := NewRegistry("test", 100)
	s1 := NewSchedule(r, 42)
	s2 := NewSchedule(r, 42)
	for slot := uint64(0); slot < 100; slot++ {
		if s1.ProposerIndex(slot) != s2.ProposerIndex(slot) {
			t.Fatal("schedule not deterministic")
		}
	}
	// Same slot asked twice gives the same answer (lookahead property).
	if s1.ProposerIndex(50) != s1.ProposerIndex(50) {
		t.Error("schedule not stable")
	}
	s3 := NewSchedule(r, 43)
	same := 0
	for slot := uint64(0); slot < 100; slot++ {
		if s1.ProposerIndex(slot) == s3.ProposerIndex(slot) {
			same++
		}
	}
	if same == 100 {
		t.Error("different seeds produced identical schedules")
	}
}

func TestScheduleRoughlyUniform(t *testing.T) {
	r := NewRegistry("test", 10)
	s := NewSchedule(r, 7)
	counts := make([]int, 10)
	const slots = 20_000
	for slot := uint64(0); slot < slots; slot++ {
		counts[s.ProposerIndex(slot)]++
	}
	for i, c := range counts {
		frac := float64(c) / slots
		if math.Abs(frac-0.1) > 0.02 {
			t.Errorf("validator %d selected %.3f of slots", i, frac)
		}
	}
}

func TestAnnouncedAt(t *testing.T) {
	// Slot 70 is in epoch 2; announced at the start of epoch 1 (slot 32).
	if got := AnnouncedAt(70); got != 32 {
		t.Errorf("AnnouncedAt(70) = %d", got)
	}
	// Lookahead is at least one epoch: 70-32 = 38 slots > 32.
	if 70-AnnouncedAt(70) < SlotsPerEpoch {
		t.Error("less than one epoch of lookahead")
	}
	if AnnouncedAt(5) != 0 {
		t.Error("epoch-0 slots should announce at 0")
	}
}

func TestLedger(t *testing.T) {
	r := NewRegistry("test", 3)
	l := NewLedger()
	v := r.ByIndex(1)
	l.RecordProposal(v)
	l.RecordProposal(v)
	if l.Proposals(1) != 2 || l.Proposals(0) != 0 {
		t.Error("proposal counts wrong")
	}
	want := types.Ether(2 * ProposerRewardETH)
	if got := l.Accrued(1); got != want {
		t.Errorf("accrued = %s, want %s", got, want)
	}
	if l.TotalProposals() != 2 {
		t.Error("total wrong")
	}
}
