package p2p

import (
	"testing"
	"time"

	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/rng"
)

func testNet(t *testing.T) *Network {
	t.Helper()
	n, err := NewNetwork(DefaultConfig(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Nodes: 1, Degree: 2, Observers: 1},
		{Nodes: 10, Degree: 0, Observers: 1},
		{Nodes: 10, Degree: 2, Observers: 0},
		{Nodes: 10, Degree: 2, Observers: 11},
	}
	for i, cfg := range bad {
		if _, err := NewNetwork(cfg, rng.New(1)); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestObserverCount(t *testing.T) {
	n := testNet(t)
	if got := len(n.Observers()); got != DefaultObservers {
		t.Errorf("observers = %d, want %d", got, DefaultObservers)
	}
	if n.Nodes() != 200 {
		t.Errorf("nodes = %d", n.Nodes())
	}
}

func TestBroadcastReachesAllObservers(t *testing.T) {
	n := testNet(t)
	at := time.Date(2022, 10, 1, 0, 0, 0, 0, time.UTC)
	h := crypto.Keccak256([]byte("tx"))
	obs := n.Broadcast(h, 0, at)
	if obs.TxHash != h {
		t.Error("hash not carried")
	}
	for i, seen := range obs.Seen {
		if seen.IsZero() {
			t.Fatalf("observer %d never saw the tx (connected ring)", i)
		}
		if !seen.After(at) && seen != at {
			t.Fatalf("observer %d saw the tx before broadcast", i)
		}
	}
	first, ok := obs.FirstSeen()
	if !ok {
		t.Fatal("FirstSeen found nothing")
	}
	if first.Before(at) {
		t.Error("first seen before broadcast")
	}
}

func TestLatenciesAreReasonable(t *testing.T) {
	n := testNet(t)
	mean := n.MeanObserverLatency()
	// With 200 nodes, degree ~8 and 50ms links, first-observer latency
	// should be well under a slot (12s) and over zero.
	if mean <= 0 || mean > 3*time.Second {
		t.Errorf("mean observer latency = %v", mean)
	}
}

func TestObserversDisagreeOnArrival(t *testing.T) {
	n := testNet(t)
	at := time.Unix(0, 0).UTC()
	obs := n.Broadcast(crypto.Keccak256([]byte("x")), n.RandomOrigin(), at)
	distinct := map[time.Time]bool{}
	for _, s := range obs.Seen {
		distinct[s] = true
	}
	if len(distinct) < 2 {
		t.Error("all observers saw the tx at the same instant")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	n1, _ := NewNetwork(DefaultConfig(), rng.New(9))
	n2, _ := NewNetwork(DefaultConfig(), rng.New(9))
	at := time.Unix(1000, 0)
	h := crypto.Keccak256([]byte("d"))
	o1 := n1.Broadcast(h, 5, at)
	o2 := n2.Broadcast(h, 5, at)
	for i := range o1.Seen {
		if !o1.Seen[i].Equal(o2.Seen[i]) {
			t.Fatal("same seed produced different observations")
		}
	}
}

func TestFirstSeenEmpty(t *testing.T) {
	var obs Observation
	if _, ok := obs.FirstSeen(); ok {
		t.Error("empty observation has a first-seen")
	}
}

func BenchmarkBroadcast(b *testing.B) {
	n, err := NewNetwork(DefaultConfig(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	h := crypto.Keccak256([]byte("bench"))
	at := time.Unix(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Broadcast(h, i%n.Nodes(), at)
	}
}
