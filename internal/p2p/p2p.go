// Package p2p simulates the Ethereum transaction gossip overlay and the
// observer infrastructure the paper's mempool dataset comes from: the
// Mempool Guru project ran seven full nodes and recorded, for every
// transaction, the timestamp at which each node first observed it.
//
// The network is a random K-regular-ish undirected graph with log-normally
// distributed per-link latencies. Propagation from an origin node follows
// shortest-latency paths (transactions flood, so the first copy wins);
// observer arrival times are therefore Dijkstra distances plus per-message
// jitter. Distances from each observer are precomputed once, making
// per-transaction broadcasts O(observers).
//
// Private order flow never touches the network: the simulator simply does
// not broadcast those transactions, and the classifier in the measurement
// pipeline marks a transaction private when no observer saw it before
// inclusion — the same rule the paper applies.
package p2p

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"github.com/ethpbs/pbslab/internal/rng"
	"github.com/ethpbs/pbslab/internal/types"
)

// DefaultObservers is the number of vantage points Mempool Guru operated.
const DefaultObservers = 7

// Config shapes the simulated overlay.
type Config struct {
	// Nodes is the overlay size.
	Nodes int
	// Degree is the target peer count per node.
	Degree int
	// Observers is the number of vantage points recording arrivals.
	Observers int
	// MedianLinkLatency is the median one-hop latency.
	MedianLinkLatency time.Duration
	// LatencySigma is the log-normal sigma of link latencies.
	LatencySigma float64
	// JitterSigma scales per-message arrival jitter.
	JitterSigma float64
}

// DefaultConfig returns an overlay shaped like a modest public network
// sample: 200 nodes, degree 8, 7 observers, ~50ms median links.
func DefaultConfig() Config {
	return Config{
		Nodes:             200,
		Degree:            8,
		Observers:         DefaultObservers,
		MedianLinkLatency: 50 * time.Millisecond,
		LatencySigma:      0.6,
		JitterSigma:       0.15,
	}
}

// Observation is the per-observer first-seen record for one transaction.
type Observation struct {
	TxHash types.Hash
	// Seen holds one arrival time per observer. A nil entry means that
	// observer never saw the transaction (partitioned vantage).
	Seen []time.Time
}

// FirstSeen returns the earliest observer arrival, ok=false when no
// observer saw the transaction.
func (o Observation) FirstSeen() (time.Time, bool) {
	var best time.Time
	found := false
	for _, t := range o.Seen {
		if t.IsZero() {
			continue
		}
		if !found || t.Before(best) {
			best = t
			found = true
		}
	}
	return best, found
}

// Network is the gossip overlay.
type Network struct {
	cfg       Config
	r         *rng.RNG
	adj       [][]edge // adjacency with latencies
	observers []int
	// distToObserver[i][n] is the propagation latency from node n to
	// observer i along shortest paths.
	distToObserver [][]float64
}

type edge struct {
	to      int
	latency float64 // seconds
}

// NewNetwork builds the overlay graph and precomputes observer distances.
func NewNetwork(cfg Config, r *rng.RNG) (*Network, error) {
	if cfg.Nodes < 2 || cfg.Degree < 1 || cfg.Observers < 1 || cfg.Observers > cfg.Nodes {
		return nil, fmt.Errorf("p2p: invalid config %+v", cfg)
	}
	n := &Network{cfg: cfg, r: r.Fork("p2p"), adj: make([][]edge, cfg.Nodes)}

	// Ring + random chords: guarantees connectivity, approximates the
	// degree target, and produces realistic small-world path lengths.
	mu := math.Log(cfg.MedianLinkLatency.Seconds())
	link := func(a, b int) {
		lat := n.r.LogNormal(mu, cfg.LatencySigma)
		n.adj[a] = append(n.adj[a], edge{to: b, latency: lat})
		n.adj[b] = append(n.adj[b], edge{to: a, latency: lat})
	}
	for i := 0; i < cfg.Nodes; i++ {
		link(i, (i+1)%cfg.Nodes)
	}
	extra := (cfg.Degree - 2) / 2
	for i := 0; i < cfg.Nodes; i++ {
		for k := 0; k < extra; k++ {
			j := n.r.Intn(cfg.Nodes)
			if j != i {
				link(i, j)
			}
		}
	}

	// Observers are spread across the ring, as real vantage points are
	// geographically dispersed.
	stride := cfg.Nodes / cfg.Observers
	for i := 0; i < cfg.Observers; i++ {
		n.observers = append(n.observers, i*stride)
	}

	n.distToObserver = make([][]float64, cfg.Observers)
	for i, obs := range n.observers {
		n.distToObserver[i] = n.dijkstra(obs)
	}
	return n, nil
}

// dijkstra computes shortest-latency distances from src to every node.
func (n *Network) dijkstra(src int) []float64 {
	dist := make([]float64, n.cfg.Nodes)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.dist > dist[item.node] {
			continue
		}
		for _, e := range n.adj[item.node] {
			if d := item.dist + e.latency; d < dist[e.to] {
				dist[e.to] = d
				heap.Push(pq, distItem{node: e.to, dist: d})
			}
		}
	}
	return dist
}

// Observers returns the observer node ids.
func (n *Network) Observers() []int { return n.observers }

// Nodes returns the overlay size.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// RandomOrigin picks a broadcast origin node.
func (n *Network) RandomOrigin() int { return n.r.Intn(n.cfg.Nodes) }

// RNGState returns the network's jitter-stream position for checkpointing.
// The graph itself is deterministic from the construction seed, so the
// stream position is the only mutable state a resume has to restore.
func (n *Network) RNGState() uint64 { return n.r.State() }

// SetRNGState repositions the jitter stream (checkpoint restore).
func (n *Network) SetRNGState(s uint64) { n.r.SetState(s) }

// Broadcast floods tx from origin at time at and returns when each observer
// first sees it. Per-message jitter models queueing and batching noise.
func (n *Network) Broadcast(txHash types.Hash, origin int, at time.Time) Observation {
	obs := Observation{TxHash: txHash, Seen: make([]time.Time, len(n.observers))}
	for i := range n.observers {
		base := n.distToObserver[i][origin]
		if math.IsInf(base, 1) {
			continue // unreachable observer
		}
		jitter := math.Abs(n.r.Normal(0, n.cfg.JitterSigma*base+0.001))
		obs.Seen[i] = at.Add(time.Duration((base + jitter) * float64(time.Second)))
	}
	return obs
}

// MeanObserverLatency reports the average origin-to-first-observer latency
// across all origins; used in tests and docs to sanity-check the overlay.
func (n *Network) MeanObserverLatency() time.Duration {
	var total float64
	for node := 0; node < n.cfg.Nodes; node++ {
		best := math.Inf(1)
		for i := range n.observers {
			if d := n.distToObserver[i][node]; d < best {
				best = d
			}
		}
		total += best
	}
	return time.Duration(total / float64(n.cfg.Nodes) * float64(time.Second))
}

// distHeap is a min-heap for Dijkstra.
type distItem struct {
	node int
	dist float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
