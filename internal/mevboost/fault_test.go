package mevboost

import (
	"errors"
	"testing"
	"time"

	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/pbs"
	"github.com/ethpbs/pbslab/internal/types"
)

// fakeEndpoint scripts an endpoint's failure behaviour.
type fakeEndpoint struct {
	name string
	// headerErrs is how many GetHeader calls fail before bids flow.
	headerErrs int
	// payloadErrs is how many GetPayload calls fail before payloads flow.
	payloadErrs int
	bid         *pbs.Bid
	block       *types.Block
	down        bool
	// onHeader runs before each GetHeader (budget tests advance a fake
	// clock here).
	onHeader func()

	headerCalls  int
	payloadCalls int
}

func (f *fakeEndpoint) RelayName() string { return f.name }

func (f *fakeEndpoint) GetHeader(slot uint64, proposer types.PubKey) (*pbs.Bid, error) {
	if f.onHeader != nil {
		f.onHeader()
	}
	f.headerCalls++
	if f.headerCalls <= f.headerErrs {
		return nil, errors.New("fake: header failure")
	}
	return f.bid, nil
}

func (f *fakeEndpoint) GetPayload(at time.Time, signed *pbs.SignedBlindedHeader) (*types.Block, error) {
	f.payloadCalls++
	if f.payloadCalls <= f.payloadErrs {
		return nil, errors.New("fake: payload failure")
	}
	return f.block, nil
}

func (f *fakeEndpoint) RegisterValidator(reg pbs.Registration) {}

func (f *fakeEndpoint) Available(at time.Time) bool { return !f.down }

func fakeBid(value types.Wei) (*pbs.Bid, *types.Block) {
	header := &types.Header{Number: 1, Slot: 1}
	block := types.NewBlock(header, nil)
	bid := &pbs.Bid{Slot: 1, Value: value, BlockHash: block.Hash()}
	return bid, block
}

func faultSidecar(relays ...Endpoint) *Sidecar {
	key := crypto.NewKey([]byte("fault-validator"))
	s := New(key, crypto.AddressFromSeed("fault-fee"), relays)
	s.Stats = &Stats{}
	return s
}

func TestBreakerOpensAndCools(t *testing.T) {
	b := NewBreaker(2, time.Minute)
	t0 := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	if !b.Allow("R", t0) {
		t.Fatal("fresh breaker should allow")
	}
	b.Failure("R", t0)
	if !b.Allow("R", t0) {
		t.Fatal("one failure under threshold should allow")
	}
	b.Failure("R", t0)
	if b.Allow("R", t0) {
		t.Fatal("threshold failures should open the circuit")
	}
	if b.Allow("R", t0.Add(30*time.Second)) {
		t.Fatal("circuit should stay open inside the cooldown")
	}
	if !b.Allow("R", t0.Add(2*time.Minute)) {
		t.Fatal("cooldown elapsed: probe should be allowed")
	}
	// A failing probe re-opens from the probe's time.
	b.Failure("R", t0.Add(2*time.Minute))
	if b.Allow("R", t0.Add(2*time.Minute+30*time.Second)) {
		t.Fatal("failed probe should re-open the circuit")
	}
	// A successful probe closes it.
	b.Success("R")
	if !b.Allow("R", t0.Add(2*time.Minute+30*time.Second)) {
		t.Fatal("success should close the circuit")
	}
}

func TestCircuitBreakerSkipsDeadRelays(t *testing.T) {
	dead := &fakeEndpoint{name: "dead", headerErrs: 1 << 30}
	s := faultSidecar(dead)
	s.Breaker = NewBreaker(2, time.Hour)
	at := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

	// Two failing slots open the circuit.
	for i := 0; i < 2; i++ {
		if _, err := s.CollectBids(at, 1); !errors.Is(err, ErrNoBids) {
			t.Fatalf("err = %v, want ErrNoBids", err)
		}
	}
	calls := dead.headerCalls
	// Circuit open: further slots skip the relay entirely and the proposer
	// is told there are no bids — run.go falls back to local building.
	if _, err := s.CollectBids(at.Add(time.Minute), 2); !errors.Is(err, ErrNoBids) {
		t.Fatalf("err = %v, want ErrNoBids", err)
	}
	if dead.headerCalls != calls {
		t.Error("circuit-broken relay was still queried")
	}
	if got := s.Stats.Snapshot(); got.CircuitSkips == 0 || got.HeaderErrors != 2 {
		t.Errorf("stats = %+v, want circuit skips and 2 header errors", got)
	}
	// After the cooldown the relay is probed again.
	if _, err := s.CollectBids(at.Add(2*time.Hour), 3); !errors.Is(err, ErrNoBids) {
		t.Fatalf("err = %v, want ErrNoBids", err)
	}
	if dead.headerCalls != calls+1 {
		t.Error("cooldown elapsed but relay not probed")
	}
}

func TestBreakerRecoversToHealthyRelay(t *testing.T) {
	bid, block := fakeBid(types.Ether(1))
	flaky := &fakeEndpoint{name: "flaky", headerErrs: 2, bid: bid, block: block}
	s := faultSidecar(flaky)
	s.Breaker = NewBreaker(2, time.Minute)
	at := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

	for i := 0; i < 2; i++ {
		if _, err := s.CollectBids(at, 1); !errors.Is(err, ErrNoBids) {
			t.Fatalf("err = %v, want ErrNoBids", err)
		}
	}
	// Cooldown passes; the probe succeeds and bids flow again.
	auction, err := s.CollectBids(at.Add(2*time.Minute), 1)
	if err != nil {
		t.Fatalf("recovered relay: %v", err)
	}
	if auction.Best.Value != bid.Value {
		t.Error("wrong bid after recovery")
	}
}

func TestOutageWindowSkipsRelay(t *testing.T) {
	bid, block := fakeBid(types.Ether(1))
	down := &fakeEndpoint{name: "down", down: true, bid: bid, block: block}
	up := &fakeEndpoint{name: "up", bid: bid, block: block}
	s := faultSidecar(down, up)
	at := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

	auction, err := s.CollectBids(at, 1)
	if err != nil {
		t.Fatal(err)
	}
	if down.headerCalls != 0 {
		t.Error("relay in outage was queried")
	}
	if len(auction.WinnerNames) != 1 || auction.WinnerNames[0] != "up" {
		t.Errorf("winners = %v", auction.WinnerNames)
	}
	if got := s.Stats.Snapshot(); got.OutageSkips != 1 {
		t.Errorf("outage skips = %d, want 1", got.OutageSkips)
	}
}

func TestPayloadRetrySecondPassSucceeds(t *testing.T) {
	bid, block := fakeBid(types.Ether(1))
	flaky := &fakeEndpoint{name: "flaky", payloadErrs: 1, bid: bid, block: block}
	s := faultSidecar(flaky)
	at := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

	prop, err := s.Propose(at, 1)
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if prop.Block.Hash() != block.Hash() {
		t.Error("wrong block after payload retry")
	}
	got := s.Stats.Snapshot()
	if got.PayloadRetries != 1 || got.PayloadErrors != 1 {
		t.Errorf("stats = %+v, want 1 retry and 1 payload error", got)
	}
}

func TestPayloadRetryExhausted(t *testing.T) {
	bid, block := fakeBid(types.Ether(1))
	dead := &fakeEndpoint{name: "dead", payloadErrs: 1 << 30, bid: bid, block: block}
	s := faultSidecar(dead)
	s.PayloadAttempts = 3
	at := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

	if _, err := s.Propose(at, 1); err == nil {
		t.Fatal("exhausted payload retrieval should fail")
	}
	got := s.Stats.Snapshot()
	if got.PayloadRetries != 2 || got.PayloadErrors != 3 {
		t.Errorf("stats = %+v, want 2 retries and 3 payload errors", got)
	}
}

func TestHeaderBudgetSkipsTail(t *testing.T) {
	bid, block := fakeBid(types.Ether(1))
	now := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	// Each queried relay costs 400ms of the 300ms budget, so the first
	// call alone exhausts it and the remaining relays are skipped.
	slow := func() { now = now.Add(400 * time.Millisecond) }
	first := &fakeEndpoint{name: "first", bid: bid, block: block, onHeader: slow}
	second := &fakeEndpoint{name: "second", bid: bid, block: block, onHeader: slow}
	third := &fakeEndpoint{name: "third", bid: bid, block: block, onHeader: slow}
	s := faultSidecar(first, second, third)
	s.HeaderBudget = 300 * time.Millisecond
	s.Clock = func() time.Time { return now }

	auction, err := s.CollectBids(now, 1)
	if err != nil {
		t.Fatal(err)
	}
	if auction.Best == nil || first.headerCalls != 1 {
		t.Fatal("first relay should have answered")
	}
	if second.headerCalls != 0 || third.headerCalls != 0 {
		t.Error("relays beyond the budget were queried")
	}
	if got := s.Stats.Snapshot(); got.BudgetSkips != 2 {
		t.Errorf("budget skips = %d, want 2", got.BudgetSkips)
	}
}
