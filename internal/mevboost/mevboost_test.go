package mevboost

import (
	"errors"
	"testing"
	"time"

	"github.com/ethpbs/pbslab/internal/builder"
	"github.com/ethpbs/pbslab/internal/chain"
	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/evm"
	"github.com/ethpbs/pbslab/internal/ofac"
	"github.com/ethpbs/pbslab/internal/pbs"
	"github.com/ethpbs/pbslab/internal/relay"
	"github.com/ethpbs/pbslab/internal/rng"
	"github.com/ethpbs/pbslab/internal/state"
	"github.com/ethpbs/pbslab/internal/types"
)

var (
	alice       = crypto.AddressFromSeed("alice")
	bob         = crypto.AddressFromSeed("bob")
	proposerFee = crypto.AddressFromSeed("proposer-fee")
)

type env struct {
	chain    *chain.Chain
	builder  *builder.Builder
	relayA   *relay.Relay
	relayB   *relay.Relay
	sidecar  *Sidecar
	now      time.Time
	valKey   *crypto.Key
	slotUsed uint64
}

func newEnv(t *testing.T) *env {
	t.Helper()
	st := state.New()
	st.SetBalance(alice, types.Ether(10_000))
	st.SetBalance(crypto.AddressFromSeed("builder/boosttest"), types.Ether(100_000))
	c := chain.New(chain.MainnetMergeConfig(), evm.NewEngine(), st)
	b := builder.New(builder.Profile{
		Name: "boosttest", Keys: 1, MarginETH: 0.0001, MempoolCoverage: 1,
	}, rng.New(1))
	sanctions := ofac.DefaultList()
	rA := relay.New(relay.Policy{Name: "A", Access: relay.AccessPermissionless}, c, sanctions)
	rB := relay.New(relay.Policy{Name: "B", Access: relay.AccessPermissionless}, c, sanctions)
	for _, r := range []*relay.Relay{rA, rB} {
		r.AllowBuilder(b.PubKeys()[0], b.VerificationKey(chain.MergeSlot+1))
	}
	valKey := crypto.NewKey([]byte("validator"))
	sc := New(valKey, proposerFee, []Endpoint{Direct{rA}, Direct{rB}})
	e := &env{
		chain: c, builder: b, relayA: rA, relayB: rB,
		sidecar: sc, valKey: valKey,
		now:      time.Date(2023, 1, 10, 12, 0, 0, 0, time.UTC),
		slotUsed: chain.MergeSlot + 1,
	}
	sc.Register(e.now)
	return e
}

func (e *env) submit(t *testing.T, r *relay.Relay, tipGwei uint64) *pbs.Submission {
	t.Helper()
	tx := types.NewTransaction(0, alice, bob, types.Ether(1), 21_000,
		types.Gwei(200), types.Gwei(tipGwei), nil)
	args := builder.Args{
		Chain: e.chain, Slot: e.slotUsed,
		ProposerPubkey:       e.valKey.Pub(),
		ProposerFeeRecipient: proposerFee,
		Pending:              []*types.Transaction{tx},
	}
	res, ok := e.builder.Build(args)
	if !ok {
		t.Fatal("build failed")
	}
	sub := e.builder.Submission(args, res)
	if err := r.SubmitBlock(e.now, sub); err != nil {
		t.Fatalf("SubmitBlock: %v", err)
	}
	return sub
}

func TestRegisterReachesAllRelays(t *testing.T) {
	e := newEnv(t)
	if e.relayA.ValidatorCount() != 1 || e.relayB.ValidatorCount() != 1 {
		t.Error("registration did not reach all relays")
	}
}

func TestBestBidAcrossRelays(t *testing.T) {
	e := newEnv(t)
	e.submit(t, e.relayA, 10)
	big := e.submit(t, e.relayB, 90)

	auction, err := e.sidecar.CollectBids(e.now, e.slotUsed)
	if err != nil {
		t.Fatal(err)
	}
	if auction.Best.BlockHash != big.Trace.BlockHash {
		t.Error("did not pick the higher bid")
	}
	if len(auction.WinnerNames) != 1 || auction.WinnerNames[0] != "B" {
		t.Errorf("winners = %v", auction.WinnerNames)
	}
}

func TestMultiRelaySameBlockAttribution(t *testing.T) {
	e := newEnv(t)
	// The same builder block submitted to both relays (common on mainnet;
	// ~5% of PBS blocks were claimed by multiple relays).
	tx := types.NewTransaction(0, alice, bob, types.Ether(1), 21_000,
		types.Gwei(200), types.Gwei(50), nil)
	args := builder.Args{
		Chain: e.chain, Slot: e.slotUsed,
		ProposerPubkey:       e.valKey.Pub(),
		ProposerFeeRecipient: proposerFee,
		Pending:              []*types.Transaction{tx},
	}
	res, _ := e.builder.Build(args)
	sub := e.builder.Submission(args, res)
	if err := e.relayA.SubmitBlock(e.now, sub); err != nil {
		t.Fatal(err)
	}
	if err := e.relayB.SubmitBlock(e.now, sub); err != nil {
		t.Fatal(err)
	}
	auction, err := e.sidecar.CollectBids(e.now, e.slotUsed)
	if err != nil {
		t.Fatal(err)
	}
	if len(auction.WinnerNames) != 2 {
		t.Errorf("winners = %v, want both relays", auction.WinnerNames)
	}
}

func TestProposeFullFlow(t *testing.T) {
	e := newEnv(t)
	sub := e.submit(t, e.relayA, 50)
	prop, err := e.sidecar.Propose(e.now, e.slotUsed)
	if err != nil {
		t.Fatal(err)
	}
	if prop.Block.Hash() != sub.Trace.BlockHash {
		t.Error("proposed block differs from winning bid")
	}
	if prop.PromisedValue != sub.Trace.Value {
		t.Errorf("promised %s, want %s", prop.PromisedValue, sub.Trace.Value)
	}
	// The proposer can now publish it and the chain accepts.
	if _, err := e.chain.Accept(prop.Block); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	// Relay recorded the delivery for its data API.
	if len(e.relayA.Delivered()) != 1 {
		t.Error("delivery not recorded")
	}
}

func TestNoBidsFallThrough(t *testing.T) {
	e := newEnv(t)
	if _, err := e.sidecar.Propose(e.now, e.slotUsed); !errors.Is(err, ErrNoBids) {
		t.Errorf("err = %v, want ErrNoBids", err)
	}
}

func TestMinBidFiltersDust(t *testing.T) {
	e := newEnv(t)
	e.submit(t, e.relayA, 1) // tiny tip -> tiny payment
	e.sidecar.MinBid = types.Ether(1)
	if _, err := e.sidecar.CollectBids(e.now, e.slotUsed); !errors.Is(err, ErrNoBids) {
		t.Errorf("dust bid not filtered: %v", err)
	}
}
