// Package mevboost implements the validator-side PBS sidecar: it registers
// the validator with its configured relays, collects blinded bids each
// slot, selects the most profitable one, signs the blinded header, and
// retrieves the full payload — the flow Section 2.2 describes. When no
// relay produces a usable bid (or the payload fails validation, as in the
// 2022-11-10 timestamp incident), the proposer falls back to local block
// production.
package mevboost

import (
	"errors"
	"fmt"
	"time"

	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/pbs"
	"github.com/ethpbs/pbslab/internal/relay"
	"github.com/ethpbs/pbslab/internal/types"
)

// Endpoint abstracts a relay connection (direct in-process for the
// simulator, HTTP via relayapi.Client for the networked demo).
type Endpoint interface {
	RelayName() string
	GetHeader(slot uint64, proposer types.PubKey) (*pbs.Bid, error)
	GetPayload(at time.Time, signed *pbs.SignedBlindedHeader) (*types.Block, error)
	RegisterValidator(reg pbs.Registration)
}

// Direct adapts an in-process relay.
type Direct struct{ R *relay.Relay }

// RelayName implements Endpoint.
func (d Direct) RelayName() string { return d.R.Name }

// GetHeader implements Endpoint.
func (d Direct) GetHeader(slot uint64, proposer types.PubKey) (*pbs.Bid, error) {
	return d.R.GetHeader(slot, proposer)
}

// GetPayload implements Endpoint.
func (d Direct) GetPayload(at time.Time, signed *pbs.SignedBlindedHeader) (*types.Block, error) {
	return d.R.GetPayload(at, signed)
}

// RegisterValidator implements Endpoint.
func (d Direct) RegisterValidator(reg pbs.Registration) { d.R.RegisterValidator(reg) }

// ErrNoBids is returned when no connected relay can serve a header.
var ErrNoBids = errors.New("mevboost: no bids available")

// Sidecar is one validator's MEV-Boost instance.
type Sidecar struct {
	Key          *crypto.Key
	FeeRecipient types.Address
	Relays       []Endpoint
	// MinBid ignores bids below this value, making local building
	// preferable for dust blocks (a real MEV-Boost option).
	MinBid types.Wei
	// RedundancyProb is the chance the sidecar submits the signed header to
	// every winning relay instead of just the first — the behaviour behind
	// the paper's ~5% of blocks claimed by more than one relay. The draw is
	// deterministic per block hash.
	RedundancyProb float64
}

// New creates a sidecar for a validator key.
func New(key *crypto.Key, feeRecipient types.Address, relays []Endpoint) *Sidecar {
	return &Sidecar{Key: key, FeeRecipient: feeRecipient, Relays: relays}
}

// Register subscribes the validator to all configured relays.
func (s *Sidecar) Register(at time.Time) {
	reg := pbs.Registration{
		Pubkey:       s.Key.Pub(),
		FeeRecipient: s.FeeRecipient,
		GasLimit:     30_000_000,
		VerifyKey:    s.Key.VerificationKey(),
		Timestamp:    at,
	}
	for _, r := range s.Relays {
		r.RegisterValidator(reg)
	}
}

// Auction is the outcome of one slot's header auction.
type Auction struct {
	Best *pbs.Bid
	// Winners are every relay that offered the winning block hash; the
	// paper attributes multi-relay blocks fractionally to each.
	Winners []Endpoint
	// WinnerNames are the relay names of Winners.
	WinnerNames []string
}

// CollectBids queries every relay for the slot and selects the best bid by
// claimed value (ties broken by configuration order, as MEV-Boost does).
func (s *Sidecar) CollectBids(slot uint64) (*Auction, error) {
	var auction Auction
	for _, r := range s.Relays {
		bid, err := r.GetHeader(slot, s.Key.Pub())
		if err != nil || bid == nil {
			continue
		}
		if !s.MinBid.IsZero() && bid.Value.Lt(s.MinBid) {
			continue
		}
		if auction.Best == nil || bid.Value.Gt(auction.Best.Value) {
			auction.Best = bid
			auction.Winners = auction.Winners[:0]
			auction.WinnerNames = auction.WinnerNames[:0]
			auction.Winners = append(auction.Winners, r)
			auction.WinnerNames = append(auction.WinnerNames, r.RelayName())
		} else if bid.BlockHash == auction.Best.BlockHash {
			auction.Winners = append(auction.Winners, r)
			auction.WinnerNames = append(auction.WinnerNames, r.RelayName())
		}
	}
	if auction.Best == nil {
		return nil, ErrNoBids
	}
	return &auction, nil
}

// Proposal is the result of a PBS proposal attempt.
type Proposal struct {
	Block *types.Block
	// PromisedValue is what the winning relay claimed the proposer earns.
	PromisedValue types.Wei
	// Relays are the names of all relays that offered the winning block.
	Relays []string
	// BuilderPubkey identifies the winning builder.
	BuilderPubkey types.PubKey
}

// Propose runs the full blinded flow for the slot: best bid, signed header,
// payload retrieval.
func (s *Sidecar) Propose(at time.Time, slot uint64) (*Proposal, error) {
	auction, err := s.CollectBids(slot)
	if err != nil {
		return nil, err
	}
	signed := &pbs.SignedBlindedHeader{
		Slot:           slot,
		BlockHash:      auction.Best.BlockHash,
		ProposerPubkey: s.Key.Pub(),
		Signature:      pbs.SignBlindedHeader(s.Key, slot, auction.Best.BlockHash),
	}
	// Usually the signed header goes to the first winning relay only; with
	// RedundancyProb it goes to every winner, which is the behaviour behind
	// the paper's ~5% of blocks claimed by more than one relay.
	winners := auction.Winners
	names := auction.WinnerNames
	if len(winners) > 1 && !s.redundantFetch(auction.Best.BlockHash) {
		winners = winners[:1]
		names = names[:1]
	}
	var block *types.Block
	var lastErr error
	for _, r := range winners {
		b, err := r.GetPayload(at, signed)
		if err != nil {
			lastErr = err
			continue
		}
		if block == nil {
			block = b
		}
	}
	if block == nil {
		return nil, fmt.Errorf("mevboost: payload retrieval failed: %w", lastErr)
	}
	return &Proposal{
		Block:         block,
		PromisedValue: auction.Best.Value,
		Relays:        names,
		BuilderPubkey: auction.Best.BuilderPubkey,
	}, nil
}

// redundantFetch draws deterministically from the block hash.
func (s *Sidecar) redundantFetch(h types.Hash) bool {
	if s.RedundancyProb <= 0 {
		return false
	}
	digest := crypto.Keccak256([]byte("mevboost-redundancy"), h[:])
	draw := float64(uint32(digest[0])<<8|uint32(digest[1])) / 65536
	return draw < s.RedundancyProb
}
