// Package mevboost implements the validator-side PBS sidecar: it registers
// the validator with its configured relays, collects blinded bids each
// slot, selects the most profitable one, signs the blinded header, and
// retrieves the full payload — the flow Section 2.2 describes. When no
// relay produces a usable bid (or the payload fails validation, as in the
// 2022-11-10 timestamp incident), the proposer falls back to local block
// production.
//
// The sidecar degrades gracefully when relays misbehave: declared outages
// are skipped, repeatedly-failing relays are circuit-broken for a cooldown,
// the per-slot header collection respects a wall-clock budget, and payload
// retrieval retries every winning relay before giving up. All of it is
// counted in Stats so simulations can surface how often PBS survived on its
// fallbacks.
package mevboost

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/pbs"
	"github.com/ethpbs/pbslab/internal/relay"
	"github.com/ethpbs/pbslab/internal/types"
)

// Endpoint abstracts a relay connection (direct in-process for the
// simulator, HTTP via relayapi.Client for the networked demo).
type Endpoint interface {
	RelayName() string
	GetHeader(slot uint64, proposer types.PubKey) (*pbs.Bid, error)
	GetPayload(at time.Time, signed *pbs.SignedBlindedHeader) (*types.Block, error)
	RegisterValidator(reg pbs.Registration)
}

// Availability is an optional Endpoint extension: relays with declared
// outage windows report themselves down, and the sidecar skips them
// without burning a request (or a circuit-breaker failure).
type Availability interface {
	Available(at time.Time) bool
}

// Direct adapts an in-process relay.
type Direct struct{ R *relay.Relay }

// RelayName implements Endpoint.
func (d Direct) RelayName() string { return d.R.Name }

// GetHeader implements Endpoint. A relay with no bid for the slot is a
// normal auction outcome, not a fault: it maps to a nil bid so the
// sidecar's circuit breaker only sees real failures.
func (d Direct) GetHeader(slot uint64, proposer types.PubKey) (*pbs.Bid, error) {
	bid, err := d.R.GetHeader(slot, proposer)
	if errors.Is(err, relay.ErrNoBid) {
		return nil, nil
	}
	return bid, err
}

// GetPayload implements Endpoint.
func (d Direct) GetPayload(at time.Time, signed *pbs.SignedBlindedHeader) (*types.Block, error) {
	return d.R.GetPayload(at, signed)
}

// RegisterValidator implements Endpoint.
func (d Direct) RegisterValidator(reg pbs.Registration) { d.R.RegisterValidator(reg) }

// ErrNoBids is returned when no connected relay can serve a header.
var ErrNoBids = errors.New("mevboost: no bids available")

// Breaker is a per-relay circuit breaker. After Threshold consecutive
// failures a relay is skipped until Cooldown elapses; the first success
// after the cooldown probe closes the circuit again. One Breaker is meant
// to be shared across every sidecar instance of a run (sidecars are cheap
// per-slot objects; the failure memory must not be).
type Breaker struct {
	// Threshold is how many consecutive failures open the circuit.
	Threshold int
	// Cooldown is how long an open circuit rejects the relay.
	Cooldown time.Duration

	mu     sync.Mutex
	states map[string]*breakerState
}

type breakerState struct {
	fails     int
	openUntil time.Time
}

// NewBreaker builds a breaker.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{Threshold: threshold, Cooldown: cooldown}
}

// Allow reports whether the relay may be queried at the given time. A nil
// breaker allows everything. An open circuit whose cooldown has elapsed
// allows a single probe; the probe's outcome re-opens or closes it.
func (b *Breaker) Allow(relayName string, at time.Time) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.states[relayName]
	if !ok || st.fails < b.Threshold {
		return true
	}
	return !at.Before(st.openUntil)
}

// Failure records a failed call; at Threshold consecutive failures the
// circuit opens for Cooldown.
func (b *Breaker) Failure(relayName string, at time.Time) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.states == nil {
		b.states = map[string]*breakerState{}
	}
	st := b.states[relayName]
	if st == nil {
		st = &breakerState{}
		b.states[relayName] = st
	}
	st.fails++
	if st.fails >= b.Threshold {
		st.openUntil = at.Add(b.Cooldown)
	}
}

// Success closes the relay's circuit.
func (b *Breaker) Success(relayName string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if st, ok := b.states[relayName]; ok {
		st.fails = 0
	}
}

// Open reports whether the relay's circuit is currently open.
func (b *Breaker) Open(relayName string, at time.Time) bool {
	return !b.Allow(relayName, at)
}

// BreakerState is one relay's serializable circuit state.
type BreakerState struct {
	Fails     int
	OpenUntil time.Time
}

// Export snapshots every relay's circuit state for checkpointing.
func (b *Breaker) Export() map[string]BreakerState {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]BreakerState, len(b.states))
	for name, st := range b.states {
		out[name] = BreakerState{Fails: st.fails, OpenUntil: st.openUntil}
	}
	return out
}

// Restore replaces the breaker's circuit states from a checkpoint.
func (b *Breaker) Restore(states map[string]BreakerState) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.states = make(map[string]*breakerState, len(states))
	for name, st := range states {
		b.states[name] = &breakerState{fails: st.Fails, openUntil: st.OpenUntil}
	}
}

// StatsSnapshot is a point-in-time copy of the sidecar fault counters.
type StatsSnapshot struct {
	// HeaderErrors counts failed GetHeader calls; PayloadErrors counts
	// failed GetPayload calls.
	HeaderErrors  int
	PayloadErrors int
	// PayloadRetries counts extra passes over the winning relays after the
	// first pass returned no payload.
	PayloadRetries int
	// CircuitSkips counts relays skipped on an open circuit, OutageSkips
	// relays skipped in a declared outage window, BudgetSkips relays never
	// queried because the per-slot header budget ran out.
	CircuitSkips int
	OutageSkips  int
	BudgetSkips  int
}

// Stats accumulates sidecar fault counters; share one instance across the
// per-slot sidecars of a run. All methods are safe on a nil receiver.
type Stats struct {
	mu sync.Mutex
	v  StatsSnapshot
}

func (s *Stats) add(f func(*StatsSnapshot)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f(&s.v)
}

// Restore overwrites the counters from a snapshot (checkpoint resume).
func (s *Stats) Restore(v StatsSnapshot) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.v = v
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	if s == nil {
		return StatsSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v
}

// Sidecar is one validator's MEV-Boost instance.
type Sidecar struct {
	Key          *crypto.Key
	FeeRecipient types.Address
	Relays       []Endpoint
	// MinBid ignores bids below this value, making local building
	// preferable for dust blocks (a real MEV-Boost option).
	MinBid types.Wei
	// RedundancyProb is the chance the sidecar submits the signed header to
	// every winning relay instead of just the first — the behaviour behind
	// the paper's ~5% of blocks claimed by more than one relay. The draw is
	// deterministic per block hash.
	RedundancyProb float64
	// Breaker, when set, skips circuit-broken relays. Share one across
	// slots.
	Breaker *Breaker
	// Stats, when set, accumulates fault counters. Share one across slots.
	Stats *Stats
	// HeaderBudget bounds the wall-clock time spent collecting headers per
	// slot; relays beyond the budget are skipped (0 = unbounded). Real
	// sidecars must commit well before the slot's attestation deadline.
	HeaderBudget time.Duration
	// PayloadAttempts is how many passes over the winning relays payload
	// retrieval makes before giving up (default 2).
	PayloadAttempts int
	// Clock supplies wall time for the header budget; defaults to
	// time.Now. The simulator's virtual `at` time is not used here because
	// in-process calls are instant — the budget exists for real HTTP
	// relays.
	Clock func() time.Time
}

// New creates a sidecar for a validator key.
func New(key *crypto.Key, feeRecipient types.Address, relays []Endpoint) *Sidecar {
	return &Sidecar{Key: key, FeeRecipient: feeRecipient, Relays: relays}
}

func (s *Sidecar) now() time.Time {
	if s.Clock != nil {
		return s.Clock()
	}
	return time.Now()
}

// Register subscribes the validator to all configured relays.
func (s *Sidecar) Register(at time.Time) {
	reg := pbs.Registration{
		Pubkey:       s.Key.Pub(),
		FeeRecipient: s.FeeRecipient,
		GasLimit:     30_000_000,
		VerifyKey:    s.Key.VerificationKey(),
		Timestamp:    at,
	}
	for _, r := range s.Relays {
		if av, ok := r.(Availability); ok && !av.Available(at) {
			continue
		}
		r.RegisterValidator(reg)
	}
}

// Auction is the outcome of one slot's header auction.
type Auction struct {
	Best *pbs.Bid
	// Winners are every relay that offered the winning block hash; the
	// paper attributes multi-relay blocks fractionally to each.
	Winners []Endpoint
	// WinnerNames are the relay names of Winners.
	WinnerNames []string
}

// CollectBids queries every relay for the slot and selects the best bid by
// claimed value (ties broken by configuration order, as MEV-Boost does).
// Relays in a declared outage or with an open circuit are skipped, and the
// collection stops early once the header budget is exhausted.
func (s *Sidecar) CollectBids(at time.Time, slot uint64) (*Auction, error) {
	var auction Auction
	var deadline time.Time
	if s.HeaderBudget > 0 {
		deadline = s.now().Add(s.HeaderBudget)
	}
	for i, r := range s.Relays {
		if !deadline.IsZero() && s.now().After(deadline) {
			s.Stats.add(func(v *StatsSnapshot) { v.BudgetSkips += len(s.Relays) - i })
			break
		}
		if av, ok := r.(Availability); ok && !av.Available(at) {
			s.Stats.add(func(v *StatsSnapshot) { v.OutageSkips++ })
			continue
		}
		name := r.RelayName()
		if !s.Breaker.Allow(name, at) {
			s.Stats.add(func(v *StatsSnapshot) { v.CircuitSkips++ })
			continue
		}
		bid, err := r.GetHeader(slot, s.Key.Pub())
		if err != nil {
			s.Stats.add(func(v *StatsSnapshot) { v.HeaderErrors++ })
			s.Breaker.Failure(name, at)
			continue
		}
		s.Breaker.Success(name)
		if bid == nil {
			continue
		}
		if !s.MinBid.IsZero() && bid.Value.Lt(s.MinBid) {
			continue
		}
		if auction.Best == nil || bid.Value.Gt(auction.Best.Value) {
			auction.Best = bid
			auction.Winners = auction.Winners[:0]
			auction.WinnerNames = auction.WinnerNames[:0]
			auction.Winners = append(auction.Winners, r)
			auction.WinnerNames = append(auction.WinnerNames, name)
		} else if bid.BlockHash == auction.Best.BlockHash {
			auction.Winners = append(auction.Winners, r)
			auction.WinnerNames = append(auction.WinnerNames, name)
		}
	}
	if auction.Best == nil {
		return nil, ErrNoBids
	}
	return &auction, nil
}

// Proposal is the result of a PBS proposal attempt.
type Proposal struct {
	Block *types.Block
	// PromisedValue is what the winning relay claimed the proposer earns.
	PromisedValue types.Wei
	// Relays are the names of all relays that offered the winning block.
	Relays []string
	// BuilderPubkey identifies the winning builder.
	BuilderPubkey types.PubKey
}

// Propose runs the full blinded flow for the slot: best bid, signed header,
// payload retrieval with retry against every winning relay.
func (s *Sidecar) Propose(at time.Time, slot uint64) (*Proposal, error) {
	auction, err := s.CollectBids(at, slot)
	if err != nil {
		return nil, err
	}
	signed := &pbs.SignedBlindedHeader{
		Slot:           slot,
		BlockHash:      auction.Best.BlockHash,
		ProposerPubkey: s.Key.Pub(),
		Signature:      pbs.SignBlindedHeader(s.Key, slot, auction.Best.BlockHash),
	}
	// Usually the signed header goes to the first winning relay only; with
	// RedundancyProb it goes to every winner, which is the behaviour behind
	// the paper's ~5% of blocks claimed by more than one relay.
	winners := auction.Winners
	names := auction.WinnerNames
	if len(winners) > 1 && !s.redundantFetch(auction.Best.BlockHash) {
		winners = winners[:1]
		names = names[:1]
	}
	attempts := s.PayloadAttempts
	if attempts <= 0 {
		attempts = 2
	}
	var block *types.Block
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			s.Stats.add(func(v *StatsSnapshot) { v.PayloadRetries++ })
		}
		for _, r := range winners {
			b, err := r.GetPayload(at, signed)
			if err != nil {
				lastErr = err
				s.Stats.add(func(v *StatsSnapshot) { v.PayloadErrors++ })
				continue
			}
			if block == nil {
				block = b
			}
		}
		if block != nil {
			break
		}
	}
	if block == nil {
		return nil, fmt.Errorf("mevboost: payload retrieval failed: %w", lastErr)
	}
	return &Proposal{
		Block:         block,
		PromisedValue: auction.Best.Value,
		Relays:        names,
		BuilderPubkey: auction.Best.BuilderPubkey,
	}, nil
}

// redundantFetch draws deterministically from the block hash.
func (s *Sidecar) redundantFetch(h types.Hash) bool {
	if s.RedundancyProb <= 0 {
		return false
	}
	digest := crypto.Keccak256([]byte("mevboost-redundancy"), h[:])
	draw := float64(uint32(digest[0])<<8|uint32(digest[1])) / 65536
	return draw < s.RedundancyProb
}
