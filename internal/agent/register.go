// Agent auto-registration: the client side of the coordinator's registry.
// A Registrar announces the agent's capability (address, capacity, TLS,
// per-boot fingerprint) and keeps re-announcing at the cadence the
// coordinator replies with — registration doubles as the liveness
// heartbeat, so there is no separate keepalive protocol. On shutdown a
// final draining announcement deregisters immediately instead of waiting
// out the registry TTL.

package agent

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/ethpbs/pbslab/internal/fleet"
	"github.com/ethpbs/pbslab/internal/serve"
)

// Registrar announces one agent to one coordinator registry.
type Registrar struct {
	// Coordinator is the registry's base URL, e.g. "http://host:9301".
	Coordinator string
	// Self is the capability announced. Boot is filled with a random
	// per-boot fingerprint when empty.
	Self fleet.RegisterRequest
	// Auth, when set, signs every announcement with the fleet secret.
	Auth *serve.Authenticator
	// HTTP is the client (default http.DefaultClient).
	HTTP *http.Client
	// Log receives progress lines (default: discard).
	Log io.Writer
}

// NewBootID returns a random per-boot fingerprint: a changed Boot under
// the same address tells the coordinator the agent restarted and lost its
// held runs.
func NewBootID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("pid-%d", os.Getpid())
	}
	return hex.EncodeToString(b[:])
}

func (rg *Registrar) client() *http.Client {
	if rg.HTTP != nil {
		return rg.HTTP
	}
	return http.DefaultClient
}

func (rg *Registrar) logw() io.Writer {
	if rg.Log != nil {
		return rg.Log
	}
	return io.Discard
}

// announce posts one registration (or, with draining, a deregistration)
// and returns the heartbeat cadence the coordinator wants.
func (rg *Registrar) announce(ctx context.Context, draining bool) (time.Duration, error) {
	req := rg.Self
	req.Draining = draining
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	url := strings.TrimSuffix(rg.Coordinator, "/") + fleet.RegistryPathRegister
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if rg.Auth != nil {
		// Signed per announcement: every heartbeat draws a fresh nonce.
		if err := rg.Auth.Sign(hreq, body); err != nil {
			return 0, err
		}
	}
	resp, err := rg.client().Do(hreq)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("coordinator replied %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var reply fleet.RegisterReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&reply); err != nil {
		return 0, fmt.Errorf("decode register reply: %w", err)
	}
	return reply.HeartbeatEvery, nil
}

// Run announces until ctx is cancelled, then deregisters. Failed
// announcements are retried at the same cadence — the registry's TTL
// (three missed heartbeats) is the real liveness arbiter, so transient
// registration failures cost nothing as long as one in three lands.
func (rg *Registrar) Run(ctx context.Context) {
	if rg.Self.Boot == "" {
		rg.Self.Boot = NewBootID()
	}
	period := fleet.DefaultRegistryHeartbeat
	for {
		actx, cancel := context.WithTimeout(ctx, 5*time.Second)
		hb, err := rg.announce(actx, false)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				rg.Deregister()
				return
			}
			fmt.Fprintf(rg.logw(), "agent: register with %s failed: %v (retrying)\n", rg.Coordinator, err)
		} else if hb > 0 {
			period = hb
		}
		select {
		case <-ctx.Done():
			rg.Deregister()
			return
		case <-time.After(period):
		}
	}
}

// Deregister sends a best-effort draining announcement so the coordinator
// drops the member now; when it is lost, the registration simply expires.
func (rg *Registrar) Deregister() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := rg.announce(ctx, true); err != nil {
		fmt.Fprintf(rg.logw(), "agent: deregister from %s failed: %v (registration will expire)\n", rg.Coordinator, err)
	}
}
