// Real-network hardening chaos: the coordinator driving agents with the
// full production posture on — shared-secret HMAC on every RPC, TLS on
// the wire, dynamic registration — through WAN-grade faults: mid-transfer
// cuts at seeded byte offsets, throttled drip-fed bodies, duplicated
// (replayed) deliveries, flapping links, and an agent kill/restart. The
// run must converge to the byte-identical corpus of an undisturbed run
// with zero quarantined cells, and the fleet secret must never reach the
// journal. `make chaos-wan` runs this file under -race.

package agent

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/hex"
	"encoding/json"
	"math/big"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ethpbs/pbslab/internal/faults"
	"github.com/ethpbs/pbslab/internal/fleet"
	"github.com/ethpbs/pbslab/internal/serve"
)

// testTLSConfig mints a self-signed ECDSA P-256 certificate for 127.0.0.1
// and returns the agent-side TLS config plus the root pool a coordinator
// pins to verify it — the private-CA deployment from the README, in
// miniature.
func testTLSConfig(t testing.TB) (*tls.Config, *x509.CertPool) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "pbslab-test-agent"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	cfg := &tls.Config{Certificates: []tls.Certificate{{Certificate: [][]byte{der}, PrivateKey: key, Leaf: leaf}}}
	return cfg, pool
}

// startWANAgent is startLiveAgent with the production posture: every API
// request must carry the fleet secret's HMAC, and with tlsCfg the agent
// serves HTTPS.
func startWANAgent(t testing.TB, addr string, capacity int, secret []byte, tlsCfg *tls.Config) *liveAgent {
	t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 40; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	if tlsCfg != nil {
		ln = tls.NewListener(ln, tlsCfg)
	}
	ag, err := New(Config{
		Executable: testExecutable(t),
		Scratch:    t.TempDir(),
		Capacity:   capacity,
		RetryAfter: 50 * time.Millisecond,
		Secret:     secret,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: ag.Handler()}
	go func() { _ = srv.Serve(ln) }()
	la := &liveAgent{t: t, addr: ln.Addr().String(), srv: srv, ag: ag}
	t.Cleanup(la.kill)
	return la
}

// wanTransport wraps an agent transport in the WAN fault injector with a
// TLS-verifying base — faults fire above the encrypted connection, exactly
// where a real middlebox or flaky link would.
func wanTransport(spec fleet.AgentSpec, inj *faults.Injector, seed uint64, pool *x509.CertPool) *fleet.AgentTransport {
	tr := fleet.NewAgentTransport(spec)
	tr.Seed = seed
	tr.Timeout = 5 * time.Second
	base := &http.Transport{TLSClientConfig: &tls.Config{RootCAs: pool}}
	tr.HTTP = &http.Client{Transport: &faults.Transport{Base: base, Inj: inj, Relay: spec.Addr}}
	return tr
}

// assertJournalFreeOfSecret greps the raw journal bytes for the fleet
// secret in both its raw and hex spellings — the grep-proof the threat
// model promises for an artifact that lands on shared disks.
func assertJournalFreeOfSecret(t *testing.T, dir string, secret []byte) {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, fleet.JournalName))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, secret) || bytes.Contains(raw, []byte(hex.EncodeToString(secret))) {
		t.Error("journal contains the fleet secret")
	}
}

// TestFleetWANChaosConvergesWithAuthAndTLS is the flagship hardened-fleet
// case: local + two HTTPS agents, HMAC on every RPC, one link flapping
// and replaying deliveries, the other cutting transfers mid-body and
// throttling what survives, plus an agent kill/restart. Convergence must
// be byte-identical to an undisturbed run with zero quarantined cells,
// and the resumable-fetch ledger must show real bytes moved.
func TestFleetWANChaosConvergesWithAuthAndTLS(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-host WAN chaos run")
	}
	g := chaosGrid("wan-chaos", true, 61, 62)

	refDir := t.TempDir()
	refOpts := chaosOpts(t)
	refOpts.Workers = 2
	runFleet(t, refDir, g, refOpts, false)
	want := readTree(t, filepath.Join(refDir, fleet.MergedDirName))

	secret := []byte("wan-fleet-shared-secret")
	tlsCfg, pool := testTLSConfig(t)
	a1 := startWANAgent(t, "127.0.0.1:0", 1, secret, tlsCfg)
	a2 := startWANAgent(t, "127.0.0.1:0", 1, secret, tlsCfg)

	const seed = 11
	inj := faults.NewInjector(seed)
	// Agent 1: duplicated deliveries (replay pressure on the nonce cache —
	// the client must re-sign, not give up) behind a flapping link.
	cfg1 := faults.WANPlan(seed, a1.addr)
	cfg1.DuplicateProb = 0.2
	cfg1.Outages = faults.Flap(time.Now().Add(800*time.Millisecond), 300*time.Millisecond, 250*time.Millisecond, 2)
	inj.SetConfig(a1.addr, cfg1)
	// Agent 2: a cutting, congested link — artifact transfers die at a
	// seeded byte offset and must resume from the banked prefix.
	cfg2 := faults.WANPlan(seed, a2.addr)
	cfg2.CutProb = 0.35
	cfg2.CutAfterBytes = 32 << 10
	cfg2.ThrottleProb = 0.2
	cfg2.ThrottleChunk = 16 << 10
	cfg2.ThrottleDelay = time.Millisecond
	inj.SetConfig(a2.addr, cfg2)

	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	opts := chaosOpts(t)
	opts.MaxAttempts = 5 // chaos headroom; the outcome must not need it all
	opts.Secret = secret
	opts.Transports = []fleet.Transport{
		&fleet.LocalTransport{Executable: testExecutable(t), Slots: 1},
		wanTransport(fleet.AgentSpec{Addr: a1.addr, Capacity: 1, TLS: true}, inj, seed, pool),
		wanTransport(fleet.AgentSpec{Addr: a2.addr, Capacity: 1, TLS: true}, inj, seed, pool),
	}

	// Agent 2 crashes mid-run; a fresh incarnation (same address, same
	// credentials, empty state) takes over and must be re-used.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(900 * time.Millisecond)
		a2.kill()
		time.Sleep(300 * time.Millisecond)
		startWANAgent(t, a2.addr, 1, secret, tlsCfg)
	}()

	dir := t.TempDir()
	c, err := fleet.NewCoordinator(dir, g, opts, false)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	<-killed

	if len(sum.Quarantined) != 0 {
		t.Fatalf("WAN chaos run quarantined %d cells: %+v", len(sum.Quarantined), sum.Quarantined)
	}
	if sum.Completed != len(cells) {
		t.Fatalf("WAN chaos run completed %d/%d cells", sum.Completed, len(cells))
	}
	assertSameTree(t, want, readTree(t, filepath.Join(dir, fleet.MergedDirName)))

	st := c.Ledger().Stats()
	t.Logf("transfer ledger: wire=%d resumed=%d ranged=%d restarts=%d",
		st.WireBytes, st.ResumedBytes, st.RangedRequests, st.Restarts)
	if st.WireBytes == 0 {
		t.Error("transfer ledger saw no artifact bytes; the agents never served a fetch")
	}
	assertJournalFreeOfSecret(t, dir, secret)
}

// TestFleetDynamicRegistrationEndToEnd: no static agent list at all — the
// agent announces itself to the coordinator's authenticated registry,
// heartbeats to stay a member, and the agents-only run lands every cell
// on it; the join is journaled for resume.
func TestFleetDynamicRegistrationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-host registration run")
	}
	secret := []byte("dyn-reg-secret")
	reg := fleet.NewRegistry(serve.NewAuthenticator(secret, 0), 100*time.Millisecond)
	regSrv := httptest.NewServer(reg)
	t.Cleanup(regSrv.Close)

	la := startWANAgent(t, "127.0.0.1:0", 2, secret, nil)
	rg := &Registrar{
		Coordinator: regSrv.URL,
		Self:        fleet.RegisterRequest{Addr: la.addr, Capacity: 2, Version: "test"},
		Auth:        serve.NewAuthenticator(secret, 0),
	}
	ctx, cancel := context.WithCancel(context.Background())
	regDone := make(chan struct{})
	go func() { defer close(regDone); rg.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-regDone })

	g := chaosGrid("dyn-reg", false, 71)
	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	opts := chaosOpts(t)
	opts.Workers = 0 // agents-only: every cell must land on the registered agent
	opts.Secret = secret
	opts.Registry = reg

	dir := t.TempDir()
	sum := runFleet(t, dir, g, opts, false)
	if sum.Completed != len(cells) || len(sum.Quarantined) != 0 {
		t.Fatalf("registered-agent run completed %d/%d, quarantined %d", sum.Completed, len(cells), len(sum.Quarantined))
	}

	recs, err := fleet.ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined, leases := false, 0
	for _, rec := range recs {
		switch rec.Event {
		case fleet.EventAgentJoin:
			if rec.Agent == la.addr {
				joined = true
			}
		case fleet.EventLease:
			leases++
			if rec.Agent != la.addr {
				t.Errorf("lease on %q, want every lease on the registered agent %q", rec.Agent, la.addr)
			}
		}
	}
	if !joined {
		t.Error("registered agent's join was never journaled")
	}
	if leases == 0 {
		t.Error("no lease ever placed on the registered agent")
	}
	assertJournalFreeOfSecret(t, dir, secret)
}

// TestFleetDuplicateDeliveryIdempotentJoin: every request is delivered
// twice (faults.Transport duplicate mode — the coordinator always sees
// the second delivery's response). Duplicated dispatches must join the
// running attempt rather than fork a second worker, and every downstream
// RPC must tolerate its echo; exactly one completion per cell.
func TestFleetDuplicateDeliveryIdempotentJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-host duplicate-delivery run")
	}
	la := startLiveAgent(t, "127.0.0.1:0", 2)
	const seed = 3
	inj := faults.NewInjector(seed)
	inj.SetConfig(la.addr, faults.Config{DuplicateProb: 1})

	g := chaosGrid("dup-join", false, 81)
	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	opts := chaosOpts(t)
	opts.Transports = []fleet.Transport{
		faultyTransport(fleet.AgentSpec{Addr: la.addr, Capacity: 2}, inj, seed),
	}

	dir := t.TempDir()
	sum := runFleet(t, dir, g, opts, false)
	if sum.Completed != len(cells) || len(sum.Quarantined) != 0 {
		t.Fatalf("duplicate-delivery run completed %d/%d, quarantined %d", sum.Completed, len(cells), len(sum.Quarantined))
	}
	recs, err := fleet.ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	completes := map[string]int{}
	for _, rec := range recs {
		if rec.Event == fleet.EventComplete {
			completes[rec.Cell]++
		}
	}
	for cell, n := range completes {
		if n != 1 {
			t.Errorf("cell %s journaled %d completions under duplication, want exactly 1", cell, n)
		}
	}
	la.ag.mu.Lock()
	held := len(la.ag.runs)
	la.ag.mu.Unlock()
	if held != 0 {
		t.Errorf("agent still holds %d runs after acked completion; a duplicate forked a second worker", held)
	}
}

// TestFleetDrainReroutesWithoutCharge: a draining agent's 503 + draining
// marker must re-place the cell on another transport without burning a
// retry — no fail, no reclaim, no quarantine, just an undispatched record
// naming the drain.
func TestFleetDrainReroutesWithoutCharge(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-host drain run")
	}
	la := startLiveAgent(t, "127.0.0.1:0", 2)
	la.ag.draining.Store(true)

	g := chaosGrid("drain-reroute", false, 91)
	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	opts := chaosOpts(t)
	// The draining agent is listed first so the scheduler tries it first.
	opts.Transports = []fleet.Transport{
		fleet.NewAgentTransport(fleet.AgentSpec{Addr: la.addr, Capacity: 2}),
		&fleet.LocalTransport{Executable: testExecutable(t), Slots: 2},
	}

	dir := t.TempDir()
	sum := runFleet(t, dir, g, opts, false)
	if sum.Completed != len(cells) || len(sum.Quarantined) != 0 {
		t.Fatalf("drain run completed %d/%d, quarantined %d", sum.Completed, len(cells), len(sum.Quarantined))
	}
	recs, err := fleet.ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	rerouted := false
	for _, rec := range recs {
		switch rec.Event {
		case fleet.EventUndispatched:
			if strings.Contains(rec.Cause, "draining") {
				rerouted = true
			}
		case fleet.EventFail, fleet.EventReclaim, fleet.EventQuarantine:
			t.Errorf("drain charged the cell: %s %s attempt %d: %s", rec.Event, rec.Cell, rec.Attempt, rec.Cause)
		}
	}
	if !rerouted {
		t.Error("no undispatched record names the drain; the 503 was treated as a plain failure")
	}
}

// TestFleetWrongSecretAgentDisabledNeverDispatched: an agent holding a
// different secret rejects the coordinator's signature with a terminal
// 401. The coordinator must treat that as a config error — disable the
// transport after the first rejection, never dispatch there again, and
// finish the run elsewhere without charging the cell.
func TestFleetWrongSecretAgentDisabledNeverDispatched(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-host wrong-secret run")
	}
	la := startWANAgent(t, "127.0.0.1:0", 2, []byte("the-agents-real-secret"), nil)

	g := &fleet.Grid{
		Name:         "wrong-secret",
		Seeds:        []uint64{95},
		Days:         2,
		BlocksPerDay: 6,
		Users:        80,
		Validators:   120,
		PrivateFlow:  []float64{0.06},
	}
	opts := chaosOpts(t)
	opts.Secret = []byte("a-mistyped-fleet-secret")
	// The wrong-secret agent is listed first so it is tried first.
	opts.Transports = []fleet.Transport{
		fleet.NewAgentTransport(fleet.AgentSpec{Addr: la.addr, Capacity: 2}),
		&fleet.LocalTransport{Executable: testExecutable(t), Slots: 1},
	}

	dir := t.TempDir()
	sum := runFleet(t, dir, g, opts, false)
	if sum.Completed != 1 || len(sum.Quarantined) != 0 {
		t.Fatalf("wrong-secret run completed %d/1, quarantined %d", sum.Completed, len(sum.Quarantined))
	}
	recs, err := fleet.ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	agentLeases, rejected := 0, false
	for _, rec := range recs {
		switch rec.Event {
		case fleet.EventLease:
			if rec.Agent == la.addr {
				agentLeases++
			}
		case fleet.EventUndispatched:
			if strings.Contains(rec.Cause, "rejected credentials") {
				rejected = true
			}
		case fleet.EventFail, fleet.EventQuarantine:
			t.Errorf("auth rejection charged the cell: %s %s: %s", rec.Event, rec.Cell, rec.Cause)
		}
	}
	if !rejected {
		t.Error("no undispatched record names the credentials rejection")
	}
	if agentLeases > 1 {
		t.Errorf("coordinator dispatched to the wrong-secret agent %d times, want at most 1 (disabled after the first 401)", agentLeases)
	}
	// The agent never ran (and never held) anything for the impostor.
	la.ag.mu.Lock()
	held := len(la.ag.runs)
	la.ag.mu.Unlock()
	if held != 0 {
		t.Errorf("wrong-secret agent holds %d runs; the 401 never stopped the dispatch", held)
	}
}

// TestAgentAuthRejectsUnsignedAndScrubsReplies: with a secret configured,
// unsigned API requests bounce with 401 + a terminal marker while
// /healthz stays open, signed requests work, and every reply path scrubs
// the secret from causes and stderr tails.
func TestAgentAuthRejectsUnsignedAndScrubsReplies(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess agent run")
	}
	secret := []byte("agent-scrub-secret")
	auth := serve.NewAuthenticator(secret, 0)
	la := startWANAgent(t, "127.0.0.1:0", 2, secret, nil)
	cell := tinyCells(t, "scrub", 19)[0]

	// Unsigned dispatch: terminal 401 (not a retryable stale/replay).
	resp := postRun(t, la.addr, cell, 1)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unsigned dispatch: got %d, want 401", resp.StatusCode)
	}
	if m := resp.Header.Get(serve.AuthErrorHeader); serve.AuthRetryable(m) || m == "" {
		t.Fatalf("unsigned dispatch marker %q, want a terminal marker", m)
	}
	// Liveness probing needs no credentials.
	hz, err := http.Get("http://" + la.addr + fleet.AgentPathHealth)
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz with auth on: got %d, want 200", hz.StatusCode)
	}

	// A signed dispatch is accepted and runs to completion.
	body, _ := json.Marshal(fleet.RunRequest{Cell: cell, Epoch: 1, Heartbeat: 50 * time.Millisecond})
	req, err := http.NewRequest(http.MethodPost, "http://"+la.addr+fleet.AgentPathRun, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if err := auth.SignRequest(req, body); err != nil {
		t.Fatal(err)
	}
	signed, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	signed.Body.Close()
	if signed.StatusCode != http.StatusAccepted {
		t.Fatalf("signed dispatch: got %d, want 202", signed.StatusCode)
	}
	// Follow it to completion through the signed client (and stop the
	// worker from racing the scratch dir's cleanup).
	tr := fleet.NewAgentTransport(fleet.AgentSpec{Addr: la.addr, Capacity: 2})
	tr.Auth = auth
	deadline := time.Now().Add(2 * time.Minute)
	for done := false; !done; {
		if time.Now().After(deadline) {
			t.Fatal("signed run never finished")
		}
		reply, err := tr.Status(context.Background())
		if err != nil {
			t.Fatalf("signed status: %v", err)
		}
		for _, rs := range reply.Runs {
			if rs.Cell == cell.ID && rs.Epoch == 1 && rs.Done {
				done = true
			}
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Reply scrubbing: any cause or stderr tail an agent reports has the
	// secret (raw and hex) replaced before it goes on the wire.
	st := la.ag.scrub(fleet.AgentRunStatus{
		Cause:      "exec failed: PBS_FLEET_SECRET=" + string(secret),
		StderrTail: "dump: " + hex.EncodeToString(secret),
	})
	for _, s := range []string{st.Cause, st.StderrTail} {
		if strings.Contains(s, string(secret)) || strings.Contains(s, hex.EncodeToString(secret)) {
			t.Errorf("scrubbed reply still contains the secret: %q", s)
		}
		if !strings.Contains(s, "[redacted]") {
			t.Errorf("scrubbed reply lost the redaction marker: %q", s)
		}
	}
}
