// Package agent is the server side of the fleet's multi-host dispatch
// plane: a thin HTTP worker agent (cmd/pbsagent) that accepts cell
// assignments from a pbsfleet coordinator, runs them as crash-isolated
// subprocesses via the same worker protocol the local transport uses,
// streams heartbeats back over a watch stream, and serves the finished
// artifacts for digest-verified download.
//
// The agent is deliberately dumb about fleet semantics: it holds no
// coordinator address, initiates nothing, and keeps exactly one fact per
// cell beyond its current run — the highest epoch it has ever seen. That
// floor is the partition-tolerance mechanism: a coordinator attempt that
// was reclaimed during a partition and reconnects later carries a stale
// epoch, and every request below the floor is fenced with 409, so a
// zombie attempt can neither restart work nor surface results the
// coordinator has moved past. Within an epoch, requests are idempotent:
// re-POSTing a running (or finished) assignment joins it, so duplicate
// deliveries and coordinator restarts never fork a second worker.
//
// Admission reuses internal/serve's degradation machinery: a bounded
// number of concurrent runs, 429/503 + Retry-After when full or
// draining, graceful drain on shutdown, and panic recovery around every
// handler.
package agent

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ethpbs/pbslab/internal/dsio"
	"github.com/ethpbs/pbslab/internal/fleet"
	"github.com/ethpbs/pbslab/internal/report"
	"github.com/ethpbs/pbslab/internal/serve"
)

// Config tunes one agent.
type Config struct {
	// Executable is the worker binary (default: this binary, whose main
	// must call fleet.MaybeWorker first).
	Executable string
	// Scratch is the agent's working directory: per-run artifact staging
	// under runs/, persistent per-cell checkpoints under checkpoints/.
	Scratch string
	// Capacity is the number of concurrent cell runs (default 2).
	Capacity int
	// RetryAfter is the hint sent with 429/503 sheds (default 1s).
	RetryAfter time.Duration
	// DrainTimeout bounds how long Drain waits for running cells
	// (default 30s).
	DrainTimeout time.Duration
	// Secret, when set, requires every API request (everything except
	// /healthz) to carry the fleet's HMAC signature, and scrubs the secret
	// from every free-text reply field (Cause, StderrTail) so a worker
	// error that echoes its environment cannot leak it over the wire.
	Secret []byte
	// Log receives progress lines (default: discard).
	Log io.Writer
}

func (c *Config) fill() error {
	if c.Executable == "" {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("agent: resolve worker executable: %w", err)
		}
		c.Executable = exe
	}
	if c.Scratch == "" {
		return fmt.Errorf("agent: scratch directory is required")
	}
	if c.Capacity <= 0 {
		c.Capacity = 2
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return nil
}

// run is one held cell attempt: running until done is closed, then a
// finished result whose artifacts stay served until acked, aborted, or
// superseded.
type run struct {
	cell   fleet.Cell
	epoch  int
	dir    string // artifact staging dir (what result/ serves)
	cancel context.CancelFunc
	done   chan struct{}

	superseded atomic.Bool

	mu   sync.Mutex
	subs map[chan struct{}]struct{}
	// Result fields; written once before done is closed.
	ok    bool
	cause string
	tail  string
}

func (r *run) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	r.mu.Lock()
	r.subs[ch] = struct{}{}
	r.mu.Unlock()
	return ch
}

func (r *run) unsubscribe(ch chan struct{}) {
	r.mu.Lock()
	delete(r.subs, ch)
	r.mu.Unlock()
}

// notify pulses every watch subscriber; a slow subscriber keeps its one
// pending pulse rather than blocking the worker's heartbeat pump.
func (r *run) notify() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for ch := range r.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

func (r *run) isDone() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

func (r *run) status() fleet.AgentRunStatus {
	st := fleet.AgentRunStatus{Cell: r.cell.ID, Epoch: r.epoch}
	if r.isDone() {
		r.mu.Lock()
		st.Done, st.OK, st.Cause, st.StderrTail = true, r.ok, r.cause, r.tail
		r.mu.Unlock()
	}
	return st
}

// finish publishes the result and wakes watchers.
func (r *run) finish(ok bool, cause, tail string) {
	r.mu.Lock()
	r.ok, r.cause, r.tail = ok, cause, tail
	r.mu.Unlock()
	close(r.done)
}

// Agent is one HTTP worker agent.
type Agent struct {
	cfg Config
	adm *serve.Admission

	mu   sync.Mutex
	runs map[string]*run // cell ID → current run
	// epochs is the per-cell fencing floor: the highest epoch ever seen.
	// It outlives runs (ack clears the run, not the floor), so a stale
	// zombie stays fenced even after its successor's scratch is released.
	epochs map[string]int

	draining atomic.Bool
	panics   atomic.Uint64
	handler  http.Handler
	redact   func(string) string
}

// scrub redacts the fleet secret from a status reply's free-text fields.
func (a *Agent) scrub(st fleet.AgentRunStatus) fleet.AgentRunStatus {
	if a.redact != nil {
		st.Cause = a.redact(st.Cause)
		st.StderrTail = a.redact(st.StderrTail)
	}
	return st
}

// New builds an agent; Handler serves its API.
func New(cfg Config) (*Agent, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	for _, sub := range []string{"runs", "checkpoints"} {
		if err := os.MkdirAll(filepath.Join(cfg.Scratch, sub), 0o755); err != nil {
			return nil, fmt.Errorf("agent: create scratch: %w", err)
		}
	}
	a := &Agent{
		cfg:    cfg,
		adm:    serve.NewAdmission(cfg.Capacity, 0, 0, cfg.RetryAfter),
		runs:   map[string]*run{},
		epochs: map[string]int{},
	}
	api := http.NewServeMux()
	api.HandleFunc(fleet.AgentPathRun, a.handleRun)
	api.HandleFunc(fleet.AgentPathWatch, a.handleWatch)
	api.HandleFunc(fleet.AgentPathResult, a.handleResult)
	api.HandleFunc(fleet.AgentPathAck, a.handleAck)
	api.HandleFunc(fleet.AgentPathAbort, a.handleAbort)
	api.HandleFunc(fleet.AgentPathStatus, a.handleStatus)
	var apiH http.Handler = api
	if len(cfg.Secret) > 0 {
		// Every API request must carry a valid fleet signature; only the
		// liveness probe stays open.
		apiH = serve.NewAuthenticator(cfg.Secret, 0).Middleware(1<<20, apiH)
		a.redact = func(s string) string { return serve.RedactSecret(s, cfg.Secret) }
	}
	mux := http.NewServeMux()
	mux.Handle("/api/v1/", apiH)
	mux.HandleFunc(fleet.AgentPathHealth, a.handleHealth)
	a.handler = serve.Recover(mux, func() { a.panics.Add(1) })
	return a, nil
}

// Handler is the agent's HTTP API, panic-recovered.
func (a *Agent) Handler() http.Handler { return a.handler }

// Drain refuses new assignments and waits (bounded) for running cells to
// finish; finished results stay fetchable until shutdown.
func (a *Agent) Drain() bool {
	a.draining.Store(true)
	return a.adm.DrainWait(a.cfg.DrainTimeout)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleRun accepts (or fences, or joins) one cell assignment.
func (a *Agent) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req fleet.RunRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "parse run request: %v", err)
		return
	}
	if req.Cell.ID == "" || req.Epoch < 1 {
		writeErr(w, http.StatusBadRequest, "run request needs a cell ID and epoch >= 1")
		return
	}
	id := req.Cell.ID
	a.mu.Lock()
	if floor := a.epochs[id]; req.Epoch < floor {
		a.mu.Unlock()
		writeErr(w, http.StatusConflict, "epoch %d is fenced: highest seen for %s is %d", req.Epoch, id, floor)
		return
	}
	if cur := a.runs[id]; cur != nil {
		if cur.epoch == req.Epoch {
			// Idempotent join: duplicate delivery or coordinator restart.
			// Joins are answered even mid-drain — the work is already here.
			st := cur.status()
			a.mu.Unlock()
			writeJSON(w, http.StatusOK, a.scrub(st))
			return
		}
		if cur.epoch > req.Epoch {
			a.mu.Unlock()
			writeErr(w, http.StatusConflict, "epoch %d is fenced: cell %s already runs epoch %d", req.Epoch, id, cur.epoch)
			return
		}
		// A newer epoch supersedes the held run: kill it now so its slot
		// frees, clean its scratch once it exits.
		a.supersedeLocked(cur)
	}
	if a.draining.Load() {
		// New work only is refused. The draining marker tells the
		// coordinator not to retry here: re-place the cell elsewhere at
		// once, nothing charged.
		a.mu.Unlock()
		w.Header().Set(fleet.AgentDrainingHeader, "1")
		a.adm.Shed(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if !a.adm.TryAcquire() {
		a.mu.Unlock()
		a.adm.Shed(w, http.StatusTooManyRequests, "at capacity")
		return
	}
	rn := &run{
		cell:  req.Cell,
		epoch: req.Epoch,
		dir:   filepath.Join(a.cfg.Scratch, "runs", id, fmt.Sprintf("e%d", req.Epoch)),
		done:  make(chan struct{}),
		subs:  map[chan struct{}]struct{}{},
	}
	ctx, cancel := context.WithCancel(context.Background())
	rn.cancel = cancel
	a.runs[id] = rn
	a.epochs[id] = req.Epoch
	a.mu.Unlock()

	fmt.Fprintf(a.cfg.Log, "agent: cell %s: accepted epoch %d\n", id, req.Epoch)
	go a.execute(ctx, rn, req)
	writeJSON(w, http.StatusAccepted, a.scrub(rn.status()))
}

// supersedeLocked (a.mu held) evicts a run: marks it superseded, kills
// its worker, and schedules scratch cleanup for after it exits. Only the
// evicted epoch's own staging dir is removed — a successor epoch may
// already be writing next to it under the same cell directory.
func (a *Agent) supersedeLocked(old *run) {
	old.superseded.Store(true)
	old.cancel()
	delete(a.runs, old.cell.ID)
	go func() {
		<-old.done
		_ = os.RemoveAll(old.dir)
	}()
}

// execute runs one accepted assignment to completion: subprocess via the
// shared local transport, agent-side verification of the staged
// artifacts, result published to watchers.
func (a *Agent) execute(ctx context.Context, rn *run, req fleet.RunRequest) {
	defer a.adm.Release()
	id := rn.cell.ID
	finish := func(ok bool, cause, tail string) {
		rn.finish(ok, cause, tail)
		outcome := "ok"
		if !ok {
			outcome = cause
		}
		fmt.Fprintf(a.cfg.Log, "agent: cell %s: epoch %d finished: %s\n", id, rn.epoch, outcome)
	}
	if err := os.RemoveAll(rn.dir); err != nil {
		finish(false, "clear staging dir: "+err.Error(), "")
		return
	}
	if err := os.MkdirAll(rn.dir, 0o755); err != nil {
		finish(false, "create staging dir: "+err.Error(), "")
		return
	}
	lt := &fleet.LocalTransport{Executable: a.cfg.Executable}
	att := fleet.Attempt{
		Cell:  rn.cell,
		Epoch: rn.epoch,
		// Checkpoints persist across epochs so a retried cell resumes
		// mid-simulation on this host.
		CheckpointDir: filepath.Join(a.cfg.Scratch, "checkpoints", id),
		Heartbeat:     req.Heartbeat,
		Env:           req.Env,
	}
	err := lt.Run(ctx, att, rn.dir, rn.notify)
	if rn.superseded.Load() {
		finish(false, "superseded by a newer epoch", "")
		return
	}
	if err != nil {
		var ae *fleet.AttemptError
		if errors.As(err, &ae) {
			finish(false, ae.Cause, ae.Tail)
		} else {
			finish(false, err.Error(), "")
		}
		return
	}
	// Verify before offering: a corrupt staging dir fails here, on the
	// host that produced it, instead of after a cross-network fetch. The
	// coordinator still re-verifies everything before acceptance.
	if problems, err := report.VerifyDir(rn.dir); err != nil {
		finish(false, "output failed verification: "+err.Error(), "")
		return
	} else if len(problems) > 0 {
		finish(false, fmt.Sprintf("output failed verification: %d problem(s), first: %s", len(problems), problems[0]), "")
		return
	}
	if rn.cell.DumpDataset {
		if err := dsio.CheckDir(rn.dir); err != nil {
			finish(false, "dataset failed verification: "+err.Error(), "")
			return
		}
	}
	finish(true, "", "")
}

// ref parses a "{cell}/{epoch}" or "{cell}/{epoch}/{rest}" path suffix.
func parseRef(suffix string) (cell string, epoch int, rest string, err error) {
	parts := strings.SplitN(suffix, "/", 3)
	if len(parts) < 2 || parts[0] == "" {
		return "", 0, "", fmt.Errorf("want {cell}/{epoch}")
	}
	epoch, err = strconv.Atoi(parts[1])
	if err != nil || epoch < 1 {
		return "", 0, "", fmt.Errorf("bad epoch %q", parts[1])
	}
	if len(parts) == 3 {
		rest = parts[2]
	}
	return parts[0], epoch, rest, nil
}

// lookup resolves a (cell, epoch) to the held run, or writes the protocol
// verdict: 409 when the epoch is fenced or superseded, 404 when the agent
// simply does not know the attempt (it restarted, or the run was acked).
func (a *Agent) lookup(w http.ResponseWriter, cell string, epoch int) *run {
	a.mu.Lock()
	rn := a.runs[cell]
	floor := a.epochs[cell]
	a.mu.Unlock()
	if rn != nil && rn.epoch == epoch {
		return rn
	}
	if epoch < floor || (rn != nil && rn.epoch > epoch) {
		writeErr(w, http.StatusConflict, "epoch %d for %s is fenced (floor %d)", epoch, cell, floor)
	} else {
		writeErr(w, http.StatusNotFound, "no run for cell %s epoch %d", cell, epoch)
	}
	return nil
}

// handleWatch streams heartbeats ("hb" lines) and the final WatchEvent.
func (a *Agent) handleWatch(w http.ResponseWriter, r *http.Request) {
	cell, epoch, _, err := parseRef(strings.TrimPrefix(r.URL.Path, fleet.AgentPathWatch))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "watch: %v", err)
		return
	}
	rn := a.lookup(w, cell, epoch)
	if rn == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	sub := rn.subscribe()
	defer rn.unsubscribe(sub)
	for {
		select {
		case <-rn.done:
			st := a.scrub(rn.status())
			ev := fleet.WatchEvent{Done: true, OK: st.OK, Cause: st.Cause,
				StderrTail: st.StderrTail, Superseded: rn.superseded.Load()}
			data, _ := json.Marshal(ev)
			_, _ = w.Write(append(data, '\n'))
			fl.Flush()
			return
		case <-sub:
			if _, err := io.WriteString(w, fleet.AgentWatchHeartbeat+"\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleResult serves one finished artifact by its manifest path.
func (a *Agent) handleResult(w http.ResponseWriter, r *http.Request) {
	cell, epoch, name, err := parseRef(strings.TrimPrefix(r.URL.Path, fleet.AgentPathResult))
	if err != nil || name == "" {
		writeErr(w, http.StatusBadRequest, "result: want {cell}/{epoch}/{artifact}")
		return
	}
	rn := a.lookup(w, cell, epoch)
	if rn == nil {
		return
	}
	if !rn.isDone() {
		writeErr(w, http.StatusConflict, "cell %s epoch %d is still running", cell, epoch)
		return
	}
	if st := a.scrub(rn.status()); !st.OK {
		writeErr(w, http.StatusConflict, "cell %s epoch %d failed: %s", cell, epoch, st.Cause)
		return
	}
	clean := path.Clean(name)
	if clean != name || path.IsAbs(clean) || clean == ".." || strings.HasPrefix(clean, "../") {
		writeErr(w, http.StatusBadRequest, "unsafe artifact path %q", name)
		return
	}
	full := filepath.Join(rn.dir, filepath.FromSlash(clean))
	fi, err := os.Stat(full)
	if err != nil || fi.IsDir() {
		writeErr(w, http.StatusNotFound, "no artifact %q", name)
		return
	}
	http.ServeFile(w, r, full)
}

// handleAck releases a finished run's scratch. Idempotent: acking an
// unknown (already released) run succeeds. The epoch floor survives, so
// stale epochs stay fenced after release.
func (a *Agent) handleAck(w http.ResponseWriter, r *http.Request) {
	var ref fleet.AgentCellRef
	if r.Method != http.MethodPost || json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&ref) != nil {
		writeErr(w, http.StatusBadRequest, "ack: want POST {cell, epoch}")
		return
	}
	a.mu.Lock()
	rn := a.runs[ref.Cell]
	if rn != nil && rn.epoch == ref.Epoch && rn.isDone() {
		delete(a.runs, ref.Cell)
	} else {
		rn = nil
	}
	a.mu.Unlock()
	if rn != nil {
		_ = os.RemoveAll(filepath.Dir(rn.dir))
		_ = os.RemoveAll(filepath.Join(a.cfg.Scratch, "checkpoints", ref.Cell))
		fmt.Fprintf(a.cfg.Log, "agent: cell %s: acked epoch %d, scratch released\n", ref.Cell, ref.Epoch)
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleAbort kills and discards a held run at or below the given epoch
// and raises the fencing floor past it, so the epoch can never run or
// publish here again. Idempotent and always 200: the coordinator fires it
// best-effort after reclaims and supersessions.
func (a *Agent) handleAbort(w http.ResponseWriter, r *http.Request) {
	var ref fleet.AgentCellRef
	if r.Method != http.MethodPost || json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&ref) != nil {
		writeErr(w, http.StatusBadRequest, "abort: want POST {cell, epoch}")
		return
	}
	a.mu.Lock()
	if a.epochs[ref.Cell] <= ref.Epoch {
		a.epochs[ref.Cell] = ref.Epoch + 1
	}
	if rn := a.runs[ref.Cell]; rn != nil && rn.epoch <= ref.Epoch {
		a.supersedeLocked(rn)
		fmt.Fprintf(a.cfg.Log, "agent: cell %s: aborted epoch %d\n", ref.Cell, rn.epoch)
	}
	a.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleStatus reports everything the agent holds.
func (a *Agent) handleStatus(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	runs := make([]*run, 0, len(a.runs))
	for _, rn := range a.runs {
		runs = append(runs, rn)
	}
	a.mu.Unlock()
	reply := fleet.AgentStatusReply{
		Draining:  a.draining.Load(),
		Capacity:  a.cfg.Capacity,
		Admission: a.adm.Stats(),
		Panics:    a.panics.Load(),
	}
	for _, rn := range runs {
		reply.Runs = append(reply.Runs, a.scrub(rn.status()))
	}
	writeJSON(w, http.StatusOK, reply)
}

func (a *Agent) handleHealth(w http.ResponseWriter, r *http.Request) {
	if a.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
