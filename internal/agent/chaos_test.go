// Multi-host chaos: the fleet coordinator driving real agents over real
// sockets through an adversarial network — seeded drops, delays, sheds,
// truncated and duplicated deliveries, a hard partition, an agent
// kill/restart, an injected straggler, and a stale-epoch publication —
// must converge to the byte-identical merged corpus of an uninterrupted
// single-host run, with zero quarantined cells.

package agent

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ethpbs/pbslab/internal/faults"
	"github.com/ethpbs/pbslab/internal/fleet"
)

// chaosGrid is the shared tiny-but-real grid shape for multi-host runs.
func chaosGrid(name string, dump bool, seeds ...uint64) *fleet.Grid {
	return &fleet.Grid{
		Name:         name,
		Seeds:        seeds,
		Days:         2,
		BlocksPerDay: 6,
		Users:        80,
		Validators:   120,
		PrivateFlow:  []float64{0.06, 0.3},
		DumpDataset:  dump,
	}
}

func chaosOpts(t testing.TB) fleet.Options {
	t.Helper()
	return fleet.Options{
		MaxAttempts: 3,
		LeaseTTL:    5 * time.Second,
		Heartbeat:   50 * time.Millisecond,
		BackoffBase: 10 * time.Millisecond,
		Executable:  testExecutable(t),
	}
}

func runFleet(t testing.TB, dir string, g *fleet.Grid, opts fleet.Options, resume bool) *fleet.Summary {
	t.Helper()
	c, err := fleet.NewCoordinator(dir, g, opts, resume)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// readTree returns path→content for every regular file under dir.
func readTree(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func assertSameTree(t *testing.T, want, got map[string]string) {
	t.Helper()
	for path, content := range want {
		g, ok := got[path]
		if !ok {
			t.Errorf("merged corpus is missing %s", path)
			continue
		}
		if g != content {
			t.Errorf("merged corpus differs at %s", path)
		}
	}
	for path := range got {
		if _, ok := want[path]; !ok {
			t.Errorf("merged corpus has extra file %s", path)
		}
	}
}

// liveAgent is an agent on a real TCP listener that can be killed and
// restarted on the same address (fresh state: a crash loses the epoch
// floors and held runs, exactly like a real host reboot).
type liveAgent struct {
	t    testing.TB
	addr string
	srv  *http.Server
	ag   *Agent
}

func startLiveAgent(t testing.TB, addr string, capacity int) *liveAgent {
	t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 40; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		// The previous incarnation's port may take a moment to free.
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	ag, err := New(Config{
		Executable: testExecutable(t),
		Scratch:    t.TempDir(),
		Capacity:   capacity,
		RetryAfter: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: ag.Handler()}
	go func() { _ = srv.Serve(ln) }()
	la := &liveAgent{t: t, addr: ln.Addr().String(), srv: srv, ag: ag}
	t.Cleanup(la.kill)
	return la
}

// kill closes the listener and every open connection: in-flight RPCs and
// watch streams die with a transport error, like a pulled plug.
func (la *liveAgent) kill() { _ = la.srv.Close() }

func faultyTransport(spec fleet.AgentSpec, inj *faults.Injector, seed uint64) *fleet.AgentTransport {
	tr := fleet.NewAgentTransport(spec)
	tr.Seed = seed
	tr.Timeout = 5 * time.Second
	tr.HTTP = &http.Client{Transport: &faults.Transport{Inj: inj, Relay: spec.Addr}}
	return tr
}

// TestFleetAgentChaosConverges is the flagship multi-host chaos case:
// local + two remote agents under seeded network faults, a heartbeat
// partition, an agent kill/restart mid-run, and one injected straggler.
// The run must complete every cell (zero quarantined) and merge to the
// byte-identical corpus of an undisturbed single-host run — datasets
// included, so truncated artifact downloads are exercised end to end.
func TestFleetAgentChaosConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-host chaos run")
	}
	g := chaosGrid("agent-chaos", true, 21, 22)

	refDir := t.TempDir()
	refOpts := chaosOpts(t)
	refOpts.Workers = 2
	runFleet(t, refDir, g, refOpts, false)
	want := readTree(t, filepath.Join(refDir, fleet.MergedDirName))

	a1 := startLiveAgent(t, "127.0.0.1:0", 1)
	a2 := startLiveAgent(t, "127.0.0.1:0", 1)

	const seed = 7
	inj := faults.NewInjector(seed)
	cfg1 := faults.NetPlan(seed, a1.addr)
	// Heartbeat partition: agent 1 goes dark for 1.2s mid-run — shorter
	// than the lease TTL, so reconnection (not reclaim) must absorb it.
	cfg1.Outages = []faults.Window{faults.Partition(time.Now().Add(800*time.Millisecond), 1200*time.Millisecond)}
	inj.SetConfig(a1.addr, cfg1)
	inj.SetConfig(a2.addr, faults.NetPlan(seed, a2.addr))

	local := &fleet.LocalTransport{Executable: testExecutable(t), Slots: 1}
	t1 := faultyTransport(fleet.AgentSpec{Addr: a1.addr, Capacity: 1}, inj, seed)
	t2 := faultyTransport(fleet.AgentSpec{Addr: a2.addr, Capacity: 1}, inj, seed)

	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	straggler := cells[0].ID
	opts := chaosOpts(t)
	opts.MaxAttempts = 5 // chaos headroom; the outcome must not need it all
	opts.StragglerAfter = 1500 * time.Millisecond
	opts.Transports = []fleet.Transport{local, t1, t2}
	// One cell's first attempt runs alive-but-slow: only the straggler
	// re-dispatch path can finish it promptly.
	opts.WorkerEnv = func(cell fleet.Cell, attempt int) []string {
		if cell.ID == straggler {
			pc := faults.ProcConfig{SlowMSPerSlot: 500, MaxAttempt: 1}
			return []string{faults.ProcEnv + "=" + pc.String()}
		}
		return nil
	}

	// Agent 2 crashes mid-run and a fresh incarnation takes over the same
	// address: held runs and epoch floors are lost, and the coordinator
	// must re-place whatever it had there.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(900 * time.Millisecond)
		a2.kill()
		time.Sleep(300 * time.Millisecond)
		startLiveAgent(t, a2.addr, 1)
	}()

	dir := t.TempDir()
	sum := runFleet(t, dir, g, opts, false)
	<-killed

	if len(sum.Quarantined) != 0 {
		t.Fatalf("chaos run quarantined %d cells: %+v", len(sum.Quarantined), sum.Quarantined)
	}
	if sum.Completed != len(cells) {
		t.Fatalf("chaos run completed %d/%d cells", sum.Completed, len(cells))
	}
	assertSameTree(t, want, readTree(t, filepath.Join(dir, fleet.MergedDirName)))
}

// TestFleetStragglerRescueIdempotent: every cell's first attempt is
// alive-but-slow, so every cell is double-dispatched; the first verified
// result wins, the loser is superseded without charge, and the outcome is
// byte-identical to an undisturbed run. Run under -race, the concurrent
// sibling settlement is the point.
func TestFleetStragglerRescueIdempotent(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-host straggler run")
	}
	g := chaosGrid("straggler", false, 31)

	refDir := t.TempDir()
	refOpts := chaosOpts(t)
	refOpts.Workers = 2
	runFleet(t, refDir, g, refOpts, false)
	want := readTree(t, filepath.Join(refDir, fleet.MergedDirName))

	ag := startLiveAgent(t, "127.0.0.1:0", 2)
	opts := chaosOpts(t)
	opts.StragglerAfter = 700 * time.Millisecond
	opts.Transports = []fleet.Transport{
		&fleet.LocalTransport{Executable: testExecutable(t), Slots: 2},
		fleet.NewAgentTransport(fleet.AgentSpec{Addr: ag.addr, Capacity: 2}),
	}
	opts.WorkerEnv = func(cell fleet.Cell, attempt int) []string {
		pc := faults.ProcConfig{SlowMSPerSlot: 600, MaxAttempt: 1}
		return []string{faults.ProcEnv + "=" + pc.String()}
	}

	dir := t.TempDir()
	sum := runFleet(t, dir, g, opts, false)
	if len(sum.Quarantined) != 0 {
		t.Fatalf("straggler run quarantined cells: %+v", sum.Quarantined)
	}
	if sum.StragglerRescues < 1 {
		t.Fatalf("no straggler rescue completed a cell (rescues=%d); the re-dispatch path never won", sum.StragglerRescues)
	}
	// Idempotence: exactly one completion per cell, no double publishes.
	recs, err := fleet.ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	completes := map[string]int{}
	for _, rec := range recs {
		if rec.Event == fleet.EventComplete {
			completes[rec.Cell]++
		}
	}
	for cell, n := range completes {
		if n != 1 {
			t.Errorf("cell %s journaled %d completions, want exactly 1", cell, n)
		}
	}
	assertSameTree(t, want, readTree(t, filepath.Join(dir, fleet.MergedDirName)))
}

// TestFleetAgentResumeReattachesOpenLease kills the coordinator
// mid-remote-dispatch and resumes: the journal's open agent lease is
// pinned and rejoined at the same epoch, the remote attempt's work is
// kept, and the merged corpus is byte-identical to an uninterrupted run —
// with no failure ever charged to the surviving cell.
func TestFleetAgentResumeReattachesOpenLease(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-host resume run")
	}
	g := chaosGrid("agent-resume", false, 41)

	refDir := t.TempDir()
	refOpts := chaosOpts(t)
	refOpts.Workers = 2
	runFleet(t, refDir, g, refOpts, false)
	want := readTree(t, filepath.Join(refDir, fleet.MergedDirName))

	ag := startLiveAgent(t, "127.0.0.1:0", 1)
	dir := t.TempDir()
	mkOpts := func() fleet.Options {
		opts := chaosOpts(t)
		opts.Transports = []fleet.Transport{
			fleet.NewAgentTransport(fleet.AgentSpec{Addr: ag.addr, Capacity: 1}),
		}
		return opts
	}

	c, err := fleet.NewCoordinator(dir, g, mkOpts(), false)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the coordinator the moment the first remote lease is journaled:
	// the attempt is in flight on the agent with no settled outcome.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		defer cancel()
		deadline := time.Now().Add(time.Minute)
		for time.Now().Before(deadline) {
			recs, err := fleet.ReplayJournal(dir)
			if err == nil {
				for _, rec := range recs {
					if rec.Event == fleet.EventLease && rec.Agent != "" {
						return
					}
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()
	if _, err := c.Run(ctx); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}

	sum := runFleet(t, dir, g, mkOpts(), true)
	if len(sum.Quarantined) != 0 {
		t.Fatalf("resumed run quarantined cells: %+v", sum.Quarantined)
	}
	recs, err := fleet.ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	reattached := false
	for _, rec := range recs {
		switch rec.Event {
		case fleet.EventLease:
			if strings.Contains(rec.Cause, "re-attached") {
				reattached = true
			}
		case fleet.EventFail, fleet.EventReclaim, fleet.EventQuarantine:
			t.Errorf("resume charged the interrupted cell: %s %s attempt %d: %s", rec.Event, rec.Cell, rec.Attempt, rec.Cause)
		}
	}
	if !reattached {
		t.Error("resume never re-attached to the open agent lease")
	}
	assertSameTree(t, want, readTree(t, filepath.Join(dir, fleet.MergedDirName)))
}

// TestFleetStalePublishRejectedAndJournaled: an agent is left holding a
// finished result for an epoch the journal has since failed (a reclaimed
// attempt that kept running through a partition). Resume must fence it —
// journal a stale_publish record, abort the agent's copy, and re-run the
// cell fresh — never accept the orphan publication.
func TestFleetStalePublishRejectedAndJournaled(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-host stale-publish run")
	}
	g := &fleet.Grid{
		Name:         "stale",
		Seeds:        []uint64{51},
		Days:         2,
		BlocksPerDay: 6,
		Users:        80,
		Validators:   120,
		PrivateFlow:  []float64{0.06},
	}
	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	cell := cells[0]

	ag := startLiveAgent(t, "127.0.0.1:0", 1)
	// The agent runs (and finishes) epoch 1 — but the coordinator's
	// journal records that attempt as failed (reclaimed during a
	// partition), so the agent's held result is a zombie publication.
	if resp := postRun(t, ag.addr, cell, 1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("dispatch: got %d, want 202", resp.StatusCode)
	}
	if st := waitDone(t, ag.addr, cell.ID, 1); !st.OK {
		t.Fatalf("agent run failed: %s", st.Cause)
	}

	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	agentName := "agent:" + ag.addr
	j, err := fleet.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []fleet.Record{
		{Event: fleet.EventGrid, GridName: g.Name, Fingerprint: g.Fingerprint()},
		{Event: fleet.EventLease, Cell: cell.ID, Attempt: 1, Transport: agentName, Agent: ag.addr},
		{Event: fleet.EventReclaim, Cell: cell.ID, Attempt: 1, Cause: "lease expired: no heartbeat within deadline"},
	} {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	opts := chaosOpts(t)
	opts.Transports = []fleet.Transport{
		&fleet.LocalTransport{Executable: testExecutable(t), Slots: 1},
		fleet.NewAgentTransport(fleet.AgentSpec{Addr: ag.addr, Capacity: 1}),
	}
	sum := runFleet(t, dir, g, opts, true)
	if sum.Completed != 1 || len(sum.Quarantined) != 0 {
		t.Fatalf("resume finished %d completed / %d quarantined, want 1/0", sum.Completed, len(sum.Quarantined))
	}

	recs, err := fleet.ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	stale, completedAt := 0, 0
	for _, rec := range recs {
		switch rec.Event {
		case fleet.EventStalePublish:
			stale++
			if rec.Cell != cell.ID || rec.Attempt != 1 || rec.Agent != ag.addr {
				t.Errorf("stale_publish record names %s attempt %d on %q, want %s attempt 1 on %q",
					rec.Cell, rec.Attempt, rec.Agent, cell.ID, ag.addr)
			}
		case fleet.EventComplete:
			completedAt = rec.Attempt
		}
	}
	if stale == 0 {
		t.Error("no stale_publish record journaled for the fenced agent result")
	}
	if completedAt < 2 {
		t.Errorf("cell completed at attempt %d, want a fresh attempt >= 2 (the stale epoch must not publish)", completedAt)
	}
	// The agent's zombie copy is gone: epoch 1 is fenced for good.
	ag.ag.mu.Lock()
	_, held := ag.ag.runs[cell.ID]
	floor := ag.ag.epochs[cell.ID]
	ag.ag.mu.Unlock()
	if held && floor <= 1 {
		t.Errorf("agent still holds cell %s with epoch floor %d; stale epoch was never fenced", cell.ID, floor)
	}
}
