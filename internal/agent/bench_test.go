package agent

import (
	"context"
	"testing"
	"time"

	"github.com/ethpbs/pbslab/internal/faults"
	"github.com/ethpbs/pbslab/internal/fleet"
)

// benchGrid is the BENCH_pr8 workload: 8 fully wired cells, the same
// shape the chaos tests run, sized so per-cell simulation work dominates
// dispatch overhead on either transport.
func benchGrid() *fleet.Grid {
	return &fleet.Grid{
		Name:         "agentbench",
		Seeds:        []uint64{1, 2, 3, 4},
		Days:         2,
		BlocksPerDay: 6,
		Users:        80,
		Validators:   120,
		PrivateFlow:  []float64{0.06, 0.3},
	}
}

func benchRun(b *testing.B, dir string, g *fleet.Grid, opts fleet.Options) *fleet.Summary {
	b.Helper()
	c, err := fleet.NewCoordinator(dir, g, opts, false)
	if err != nil {
		b.Fatal(err)
	}
	sum, err := c.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	if sum.Completed != sum.Cells {
		b.Fatalf("%d/%d cells completed, %d quarantined", sum.Completed, sum.Cells, len(sum.Quarantined))
	}
	return sum
}

// BenchmarkFleetAgents measures the multi-host dispatch plane on one
// grid: a single local worker as the baseline, four loopback agent slots
// (two agents × capacity 2), the same agent fleet under the seeded chaos
// network plan, and a straggler run where slow first attempts are rescued
// by re-dispatch onto a second transport. benchjson derives
// agent_scaling_4x_vs_local and agent_chaos_overhead from the row wall
// times, and agent_straggler_rescue_rate from the rescue_rate metric.
func BenchmarkFleetAgents(b *testing.B) {
	run := func(b *testing.B, opts func(b *testing.B) fleet.Options, metric func(*fleet.Summary, *testing.B)) {
		for i := 0; i < b.N; i++ {
			sum := benchRun(b, b.TempDir(), benchGrid(), opts(b))
			if metric != nil {
				metric(sum, b)
			}
		}
	}

	b.Run("mode=local", func(b *testing.B) {
		run(b, func(b *testing.B) fleet.Options {
			opts := chaosOpts(b)
			opts.Workers = 1
			return opts
		}, nil)
	})

	b.Run("mode=agents-4x", func(b *testing.B) {
		run(b, func(b *testing.B) fleet.Options {
			opts := chaosOpts(b)
			opts.Workers = 0
			for _, la := range []*liveAgent{
				startLiveAgent(b, "127.0.0.1:0", 2),
				startLiveAgent(b, "127.0.0.1:0", 2),
			} {
				opts.Agents = append(opts.Agents, fleet.AgentSpec{Addr: la.addr, Capacity: 2})
			}
			return opts
		}, nil)
	})

	b.Run("mode=agents-4x-chaos", func(b *testing.B) {
		run(b, func(b *testing.B) fleet.Options {
			opts := chaosOpts(b)
			opts.Workers = 0
			opts.MaxAttempts = 5
			inj := faults.NewInjector(7)
			for _, la := range []*liveAgent{
				startLiveAgent(b, "127.0.0.1:0", 2),
				startLiveAgent(b, "127.0.0.1:0", 2),
			} {
				inj.SetConfig(la.addr, faults.NetPlan(7, la.addr))
				opts.Transports = append(opts.Transports,
					faultyTransport(fleet.AgentSpec{Addr: la.addr, Capacity: 2}, inj, 7))
			}
			return opts
		}, nil)
	})

	b.Run("mode=straggler", func(b *testing.B) {
		cells, rescues := 0, 0
		run(b, func(b *testing.B) fleet.Options {
			opts := chaosOpts(b)
			opts.StragglerAfter = 700 * time.Millisecond
			opts.Transports = []fleet.Transport{
				&fleet.LocalTransport{Executable: testExecutable(b), Slots: 2},
				fleet.NewAgentTransport(fleet.AgentSpec{Addr: startLiveAgent(b, "127.0.0.1:0", 2).addr, Capacity: 2}),
			}
			opts.WorkerEnv = func(cell fleet.Cell, attempt int) []string {
				pc := faults.ProcConfig{SlowMSPerSlot: 600, MaxAttempt: 1}
				return []string{faults.ProcEnv + "=" + pc.String()}
			}
			return opts
		}, func(sum *fleet.Summary, b *testing.B) {
			cells += sum.Cells
			rescues += sum.StragglerRescues
		})
		if cells > 0 {
			b.ReportMetric(float64(rescues)/float64(cells), "rescue_rate")
		}
	})
}
