package agent

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ethpbs/pbslab/internal/fleet"
	"github.com/ethpbs/pbslab/internal/report"
)

// TestMain gives the test binary the worker re-entry point: when an agent
// under test re-execs this binary with the cell environment set,
// MaybeWorker runs the cell and exits before any test would run.
func TestMain(m *testing.M) {
	fleet.MaybeWorker()
	os.Exit(m.Run())
}

// tinyCells expands a fast but fully wired grid (real sim → analysis →
// artifacts per cell).
func tinyCells(t *testing.T, name string, seeds ...uint64) []fleet.Cell {
	t.Helper()
	g := &fleet.Grid{
		Name:         name,
		Seeds:        seeds,
		Days:         2,
		BlocksPerDay: 6,
		Users:        80,
		Validators:   120,
		PrivateFlow:  []float64{0.06},
	}
	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

func testExecutable(t testing.TB) string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

// startAgent brings up an agent over a real HTTP server and returns it
// with its host:port address.
func startAgent(t *testing.T, capacity int) (*Agent, *httptest.Server, string) {
	t.Helper()
	a, err := New(Config{
		Executable: testExecutable(t),
		Scratch:    t.TempDir(),
		Capacity:   capacity,
		RetryAfter: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(a.Handler())
	t.Cleanup(srv.Close)
	return a, srv, strings.TrimPrefix(srv.URL, "http://")
}

func postRun(t *testing.T, addr string, cell fleet.Cell, epoch int) *http.Response {
	t.Helper()
	body, _ := json.Marshal(fleet.RunRequest{Cell: cell, Epoch: epoch, Heartbeat: 50 * time.Millisecond})
	resp, err := http.Post("http://"+addr+fleet.AgentPathRun, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// waitDone polls the agent's status endpoint until the (cell, epoch) run
// reports done.
func waitDone(t *testing.T, addr, cell string, epoch int) fleet.AgentRunStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + fleet.AgentPathStatus)
		if err != nil {
			t.Fatal(err)
		}
		var reply fleet.AgentStatusReply
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for _, st := range reply.Runs {
			if st.Cell == cell && st.Epoch == epoch && st.Done {
				return st
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("cell %s epoch %d never finished", cell, epoch)
	return fleet.AgentRunStatus{}
}

// TestAgentRunWatchFetchAck drives the full happy path through the real
// client: dispatch, heartbeat stream, digest-verified fetch, ack.
func TestAgentRunWatchFetchAck(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess agent run")
	}
	_, _, addr := startAgent(t, 2)
	cell := tinyCells(t, "happy", 7)[0]
	tr := fleet.NewAgentTransport(fleet.AgentSpec{Addr: addr, Capacity: 2})
	workDir := filepath.Join(t.TempDir(), "stage")
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		t.Fatal(err)
	}
	beats := 0
	err := tr.Run(context.Background(), fleet.Attempt{Cell: cell, Epoch: 1, Heartbeat: 50 * time.Millisecond},
		workDir, func() { beats++ })
	if err != nil {
		t.Fatalf("agent run: %v", err)
	}
	if beats < 2 {
		t.Fatalf("watch stream relayed %d heartbeats, want several", beats)
	}
	problems, err := report.VerifyDir(workDir)
	if err != nil || len(problems) > 0 {
		t.Fatalf("staged artifacts do not verify: %v %v", err, problems)
	}
	// The ack released the agent's hold on the run.
	st, err := tr.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Runs) != 0 {
		t.Fatalf("agent still holds %d runs after ack", len(st.Runs))
	}
}

// TestAgentEpochFencing proves the partition-tolerance invariant: every
// request below the highest epoch the agent has seen for a cell is
// fenced with 409, including after an abort raised the floor.
func TestAgentEpochFencing(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess agent run")
	}
	_, _, addr := startAgent(t, 2)
	cell := tinyCells(t, "fence", 9)[0]

	if resp := postRun(t, addr, cell, 2); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("epoch 2 dispatch: got %d, want 202", resp.StatusCode)
	}
	// A stale (reclaimed, reconnecting) epoch must be rejected while the
	// newer one runs — and its watch stream must be refused, too.
	if resp := postRun(t, addr, cell, 1); resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale epoch 1 dispatch: got %d, want 409", resp.StatusCode)
	}
	watch, err := http.Get(fmt.Sprintf("http://%s%s%s/1", addr, fleet.AgentPathWatch, cell.ID))
	if err != nil {
		t.Fatal(err)
	}
	watch.Body.Close()
	if watch.StatusCode != http.StatusConflict {
		t.Fatalf("stale epoch 1 watch: got %d, want 409", watch.StatusCode)
	}
	waitDone(t, addr, cell.ID, 2)

	// Abort epoch 2: the floor rises past it, so even the aborted epoch
	// itself can never be re-dispatched or fetched again.
	ref, _ := json.Marshal(fleet.AgentCellRef{Cell: cell.ID, Epoch: 2})
	resp, err := http.Post("http://"+addr+fleet.AgentPathAbort, "application/json", bytes.NewReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("abort: got %d, want 200", resp.StatusCode)
	}
	if resp := postRun(t, addr, cell, 2); resp.StatusCode != http.StatusConflict {
		t.Fatalf("aborted epoch 2 re-dispatch: got %d, want 409", resp.StatusCode)
	}
	res, err := http.Get(fmt.Sprintf("http://%s%s%s/2/%s", addr, fleet.AgentPathResult, cell.ID, report.ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusConflict && res.StatusCode != http.StatusNotFound {
		t.Fatalf("aborted epoch 2 result fetch: got %d, want 409/404 — a fenced epoch must never publish", res.StatusCode)
	}
	// A newer epoch is still welcome.
	if resp := postRun(t, addr, cell, 3); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("epoch 3 dispatch after abort: got %d, want 202", resp.StatusCode)
	}
	waitDone(t, addr, cell.ID, 3)
}

// TestAgentIdempotentJoin: duplicate deliveries of the same (cell, epoch)
// join the running attempt instead of forking a second worker.
func TestAgentIdempotentJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess agent run")
	}
	a, _, addr := startAgent(t, 2)
	cell := tinyCells(t, "join", 11)[0]
	if resp := postRun(t, addr, cell, 1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first dispatch: got %d, want 202", resp.StatusCode)
	}
	if resp := postRun(t, addr, cell, 1); resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate dispatch: got %d, want 200 (join)", resp.StatusCode)
	}
	a.mu.Lock()
	held := len(a.runs)
	a.mu.Unlock()
	if held != 1 {
		t.Fatalf("agent holds %d runs after duplicate dispatch, want 1", held)
	}
	st := waitDone(t, addr, cell.ID, 1)
	if !st.OK {
		t.Fatalf("run failed: %s", st.Cause)
	}
	// Joining a finished run reports its result immediately.
	resp := postRun(t, addr, cell, 1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join after done: got %d, want 200", resp.StatusCode)
	}
	var got fleet.AgentRunStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.Done || !got.OK {
		t.Fatalf("join after done reported %+v, want done+ok", got)
	}
}

// TestAgentShedsAtCapacity: a full agent sheds with 429 + Retry-After
// instead of queueing unbounded work.
func TestAgentShedsAtCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess agent run")
	}
	_, _, addr := startAgent(t, 1)
	cells := tinyCells(t, "shed", 13, 14)
	if resp := postRun(t, addr, cells[0], 1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first dispatch: got %d, want 202", resp.StatusCode)
	}
	resp := postRun(t, addr, cells[1], 1)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity dispatch: got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 shed carries no Retry-After hint")
	}
	waitDone(t, addr, cells[0].ID, 1)
}

// TestAgentDrainRefusesNewWork: a draining agent sheds dispatches with
// 503 so a coordinator re-places the cell elsewhere.
func TestAgentDrainRefusesNewWork(t *testing.T) {
	a, _, addr := startAgent(t, 2)
	a.draining.Store(true)
	cell := tinyCells(t, "drain", 15)[0]
	resp := postRun(t, addr, cell, 1)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dispatch to draining agent: got %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 shed carries no Retry-After hint")
	}
}

// TestAgentResultPathSanitized: artifact paths cannot escape the staging
// directory.
func TestAgentResultPathSanitized(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess agent run")
	}
	_, _, addr := startAgent(t, 2)
	cell := tinyCells(t, "paths", 17)[0]
	if resp := postRun(t, addr, cell, 1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("dispatch: got %d, want 202", resp.StatusCode)
	}
	waitDone(t, addr, cell.ID, 1)
	for _, evil := range []string{"../../etc/passwd", "..%2f..%2fsecret", "a/../../b"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s%s/1/%s", addr, fleet.AgentPathResult, cell.ID, evil))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("path %q: got %d, want 400/404", evil, resp.StatusCode)
		}
	}
}
