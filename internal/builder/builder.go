// Package builder implements block builders: the PBS actors that assemble
// execution payloads from searcher bundles and the public mempool, embed the
// proposer payment the paper's analysis detects (last transaction, builder →
// proposer fee recipient), and sign bid traces for relay submission. It also
// provides the vanilla local block production proposers fall back to when no
// relay bid is usable.
package builder

import (
	"strconv"

	"github.com/ethpbs/pbslab/internal/chain"
	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/evm"
	"github.com/ethpbs/pbslab/internal/pbs"
	"github.com/ethpbs/pbslab/internal/rng"
	"github.com/ethpbs/pbslab/internal/state"
	"github.com/ethpbs/pbslab/internal/types"
	"github.com/ethpbs/pbslab/internal/u256"
)

// paymentGas is the gas reserved for the proposer payment transaction (a
// plain transfer).
const paymentGas = 21_000

// Profile is the calibrated identity and economics of one builder.
type Profile struct {
	Name string
	// Keys is how many submission keys the builder rotates through (the
	// paper's builder clusters span multiple pubkeys per entity).
	Keys int
	// MarginETH / MarginSigmaETH parameterize the normal draw of the cut the
	// builder keeps per block. A negative mean models builders that on
	// average pay proposers more than the block earns (Figure 11).
	MarginETH      float64
	MarginSigmaETH float64
	// SubsidyProb is the chance the builder tops its bid up with SubsidyETH
	// of its own funds beyond the block's value (share-buying subsidies).
	SubsidyProb float64
	SubsidyETH  float64
	// MempoolCoverage is the fraction of public pending transactions the
	// builder's node has seen in time to include.
	MempoolCoverage float64
	// Relays names the relays this builder submits to.
	Relays []string
}

// Args carries everything one build needs.
type Args struct {
	Chain                *chain.Chain
	Slot                 uint64
	ProposerPubkey       types.PubKey
	ProposerFeeRecipient types.Address
	// Bundles is the private order flow reaching this builder.
	Bundles []*types.Bundle
	// Pending is the builder's view of the public mempool (already filtered
	// by the builder's own policy, e.g. OFAC).
	Pending []*types.Transaction
	// State, when non-nil, is the speculative state the build executes
	// against (the parallel slot engine passes each builder a copy-on-write
	// fork). When nil, Build takes a deep copy of the canonical state.
	State *state.State
}

// Result is a sealed block plus the payment the builder claims for it.
type Result struct {
	Block *types.Block
	// Payment is the claimed proposer value — equal to the embedded payment
	// transaction for honest builders; callers may overwrite it to model
	// value-misreporting before calling Submission.
	Payment types.Wei
	// Tips is the priority-fee revenue of the block.
	Tips types.Wei
	// Direct is the coinbase-transfer revenue (bundle payments).
	Direct types.Wei
}

// Builder assembles and signs PBS block submissions.
type Builder struct {
	Profile Profile
	// Addr is the builder's on-chain identity: the fee recipient of its
	// blocks and the sender of proposer payments.
	Addr types.Address
	// SubsidyProb is mutable so scenarios can re-weight subsidies over time
	// (beaverbuild's loss window).
	SubsidyProb float64

	keys []*crypto.Key
	r    *rng.RNG
}

// New derives a builder's keys and address deterministically from its
// profile name, and forks a private randomness stream so its economic draws
// do not perturb other actors.
func New(p Profile, r *rng.RNG) *Builder {
	if p.Keys <= 0 {
		p.Keys = 1
	}
	b := &Builder{
		Profile:     p,
		Addr:        crypto.AddressFromSeed("builder/" + p.Name),
		SubsidyProb: p.SubsidyProb,
		r:           r.Fork("builder/" + p.Name),
	}
	for i := 0; i < p.Keys; i++ {
		b.keys = append(b.keys, crypto.NewKey([]byte("builder/"+p.Name+"/key/"+strconv.Itoa(i))))
	}
	return b
}

// PubKeys returns the builder's submission pubkeys, index-aligned with
// VerificationKeys.
func (b *Builder) PubKeys() []types.PubKey {
	out := make([]types.PubKey, len(b.keys))
	for i, k := range b.keys {
		out[i] = k.Pub()
	}
	return out
}

// VerificationKeys returns the published verification keys, index-aligned
// with PubKeys.
func (b *Builder) VerificationKeys() []crypto.Hash {
	out := make([]crypto.Hash, len(b.keys))
	for i, k := range b.keys {
		out[i] = k.VerificationKey()
	}
	return out
}

// RNGState returns the builder's private draw-stream position (coverage
// sampling, margin and subsidy draws) for checkpointing.
func (b *Builder) RNGState() uint64 { return b.r.State() }

// SetRNGState repositions the builder's draw stream (checkpoint restore).
func (b *Builder) SetRNGState(s uint64) { b.r.SetState(s) }

// keyFor selects the submission key for a slot (round-robin rotation).
func (b *Builder) keyFor(slot uint64) *crypto.Key {
	return b.keys[int(slot%uint64(len(b.keys)))]
}

// VerificationKey returns the verification key the builder signs the given
// slot with.
func (b *Builder) VerificationKey(slot uint64) crypto.Hash {
	return b.keyFor(slot).VerificationKey()
}

// Build assembles a block for the slot: bundles first (atomic, dropped if
// any leg fails or reverts), then coverage-sampled public transactions by
// tip order, then the proposer payment transaction. It returns false only
// when no valid template exists.
func (b *Builder) Build(args Args) (*Result, bool) {
	if args.Chain == nil {
		return nil, false
	}
	header := args.Chain.HeaderTemplate(args.Slot, b.Addr)
	st := args.State
	if st == nil {
		st = args.Chain.StateCopy()
	}
	engine := args.Chain.Engine()
	ctx := evm.BlockContext{
		Number: header.Number, Timestamp: header.Timestamp,
		BaseFee: header.BaseFee, FeeRecipient: b.Addr, GasLimit: header.GasLimit,
	}
	budget := header.GasLimit - paymentGas

	var (
		txs      []*types.Transaction
		included = map[types.Hash]bool{}
		gasUsed  uint64
		tips     = u256.Zero
		direct   = u256.Zero
	)
	addRevenue := func(res *evm.Result) {
		tips = tips.Add(res.Tip)
		for _, t := range res.Traces {
			if t.To == b.Addr {
				direct = direct.Add(t.Value)
			}
		}
	}

	// Private order flow: each bundle is all-or-nothing and must not revert
	// (Flashbots semantics — a reverted leg voids the bundle).
	for _, bundle := range args.Bundles {
		if bundle == nil || len(bundle.Txs) == 0 {
			continue
		}
		if bundle.TargetBlock != 0 && bundle.TargetBlock != header.Number {
			continue
		}
		dup := false
		for _, tx := range bundle.Txs {
			if included[tx.Hash()] {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		snap := st.Snapshot()
		startGas, startTips, startDirect, startLen := gasUsed, tips, direct, len(txs)
		ok := true
		for _, tx := range bundle.Txs {
			res, err := engine.ApplyTx(st, ctx, tx)
			if err != nil || !res.Receipt.Succeeded() || gasUsed+res.Receipt.GasUsed > budget {
				ok = false
				break
			}
			gasUsed += res.Receipt.GasUsed
			addRevenue(res)
			txs = append(txs, tx)
		}
		if !ok {
			st.RevertTo(snap)
			gasUsed, tips, direct = startGas, startTips, startDirect
			txs = txs[:startLen]
			continue
		}
		for _, tx := range bundle.Txs {
			included[tx.Hash()] = true
		}
	}

	// Public mempool, filtered by what the builder's node saw in time.
	for _, tx := range args.Pending {
		if included[tx.Hash()] {
			continue
		}
		if !b.r.Bool(b.Profile.MempoolCoverage) {
			continue
		}
		snap := st.Snapshot()
		res, err := engine.ApplyTx(st, ctx, tx)
		if err != nil {
			st.RevertTo(snap)
			continue
		}
		if gasUsed+res.Receipt.GasUsed > budget {
			st.RevertTo(snap)
			continue
		}
		gasUsed += res.Receipt.GasUsed
		addRevenue(res)
		txs = append(txs, tx)
		included[tx.Hash()] = true
	}

	// Proposer payment: block value minus the builder's margin draw, plus
	// an occasional subsidy from the builder's own treasury.
	value := tips.Add(direct)
	payment := value
	if margin := b.r.Normal(b.Profile.MarginETH, b.Profile.MarginSigmaETH); margin >= 0 {
		payment = payment.SatSub(types.Ether(margin))
	} else {
		payment = payment.Add(types.Ether(-margin))
	}
	if b.SubsidyProb > 0 && b.r.Bool(b.SubsidyProb) {
		payment = payment.Add(types.Ether(b.Profile.SubsidyETH))
	}
	if !payment.IsZero() {
		payTx := types.NewTransaction(st.Nonce(b.Addr), b.Addr,
			args.ProposerFeeRecipient, payment, paymentGas, header.BaseFee, u256.Zero, nil)
		snap := st.Snapshot()
		res, err := engine.ApplyTx(st, ctx, payTx)
		if err != nil {
			// Treasury can't cover the bid: keep the block, drop the payment.
			st.RevertTo(snap)
			payment = u256.Zero
		} else {
			gasUsed += res.Receipt.GasUsed
			txs = append(txs, payTx)
		}
	}

	header.GasUsed = gasUsed
	return &Result{
		Block:   types.NewBlock(header, txs),
		Payment: payment,
		Tips:    tips,
		Direct:  direct,
	}, true
}

// Submission signs a bid trace for the built block with the slot's key. The
// trace claims res.Payment, which honest callers leave as Build set it.
func (b *Builder) Submission(args Args, res *Result) *pbs.Submission {
	key := b.keyFor(args.Slot)
	h := res.Block.Header
	trace := pbs.BidTrace{
		Slot:                 args.Slot,
		ParentHash:           h.ParentHash,
		BlockHash:            res.Block.Hash(),
		BuilderPubkey:        key.Pub(),
		ProposerPubkey:       args.ProposerPubkey,
		ProposerFeeRecipient: args.ProposerFeeRecipient,
		GasLimit:             h.GasLimit,
		GasUsed:              h.GasUsed,
		Value:                res.Payment,
		NumTx:                len(res.Block.Txs),
		BlockNumber:          h.Number,
	}
	return &pbs.Submission{
		Trace:     trace,
		Block:     res.Block,
		Signature: pbs.SignSubmission(key, &trace),
	}
}

// BuildLocal is vanilla (non-PBS) block production: coverage-sampled public
// transactions in tip order, no bundles, no payment transaction — the
// proposer keeps tips directly as fee recipient.
func BuildLocal(c *chain.Chain, slot uint64, feeRecipient types.Address,
	pending []*types.Transaction, coverage float64, r *rng.RNG) *types.Block {

	header := c.HeaderTemplate(slot, feeRecipient)
	st := c.StateCopy()
	ctx := evm.BlockContext{
		Number: header.Number, Timestamp: header.Timestamp,
		BaseFee: header.BaseFee, FeeRecipient: feeRecipient, GasLimit: header.GasLimit,
	}

	var (
		txs     []*types.Transaction
		gasUsed uint64
	)
	for _, tx := range pending {
		if !r.Bool(coverage) {
			continue
		}
		if applyOne(c, st, ctx, tx, &gasUsed, header.GasLimit) {
			txs = append(txs, tx)
		}
	}
	header.GasUsed = gasUsed
	return types.NewBlock(header, txs)
}

// BuildLocalExec is BuildLocal against a caller-supplied state (typically a
// copy-on-write fork of the canonical state), additionally returning the
// execution artifacts accumulated while packing. The inclusion decisions,
// coverage draws, and per-transaction execution are identical to BuildLocal;
// the returned ProcessResult matches what chain.Process would produce for
// the finished block — rejected transactions are fully reverted before the
// next candidate runs — so the caller can commit through AcceptValidated
// without executing the block a second time.
func BuildLocalExec(c *chain.Chain, st *state.State, slot uint64, feeRecipient types.Address,
	pending []*types.Transaction, coverage float64, r *rng.RNG) (*types.Block, *chain.ProcessResult) {

	header := c.HeaderTemplate(slot, feeRecipient)
	ctx := evm.BlockContext{
		Number: header.Number, Timestamp: header.Timestamp,
		BaseFee: header.BaseFee, FeeRecipient: feeRecipient, GasLimit: header.GasLimit,
	}

	res := &chain.ProcessResult{Burned: u256.Zero, Tips: u256.Zero}
	var txs []*types.Transaction
	logIndex := uint(0)
	for _, tx := range pending {
		if !r.Bool(coverage) {
			continue
		}
		snap := st.Snapshot()
		out, err := c.Engine().ApplyTx(st, ctx, tx)
		if err != nil {
			st.RevertTo(snap)
			continue
		}
		if res.GasUsed+out.Receipt.GasUsed > header.GasLimit {
			st.RevertTo(snap)
			continue
		}
		res.GasUsed += out.Receipt.GasUsed
		for j := range out.Receipt.Logs {
			out.Receipt.Logs[j].Index = logIndex
			logIndex++
		}
		res.Receipts = append(res.Receipts, out.Receipt)
		res.Traces = append(res.Traces, out.Traces...)
		res.Burned = res.Burned.Add(out.Burned)
		res.Tips = res.Tips.Add(out.Tip)
		txs = append(txs, tx)
	}
	header.GasUsed = res.GasUsed
	return types.NewBlock(header, txs), res
}

// applyOne applies tx if it is valid and fits the remaining gas, reverting
// any partial effects otherwise.
func applyOne(c *chain.Chain, st *state.State, ctx evm.BlockContext,
	tx *types.Transaction, gasUsed *uint64, gasLimit uint64) bool {

	snap := st.Snapshot()
	res, err := c.Engine().ApplyTx(st, ctx, tx)
	if err != nil {
		st.RevertTo(snap)
		return false
	}
	if *gasUsed+res.Receipt.GasUsed > gasLimit {
		st.RevertTo(snap)
		return false
	}
	*gasUsed += res.Receipt.GasUsed
	return true
}
