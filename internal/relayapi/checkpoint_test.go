package relayapi

import (
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestCrawlStateSaveLoadRoundTrip(t *testing.T) {
	ts := newTraceServer(t, syntheticTraces(10), nil)
	c := fastClient("roundtrip", ts.srv.URL, nil)
	st := NewCrawlState()
	if err := c.ResumeDelivered(bg, 3, st); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "state.json")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCrawlState(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cursor != st.Cursor || loaded.Pages != st.Pages || loaded.Done != st.Done {
		t.Errorf("loaded {cursor %d pages %d done %v}, want {%d %d %v}",
			loaded.Cursor, loaded.Pages, loaded.Done, st.Cursor, st.Pages, st.Done)
	}
	if !reflect.DeepEqual(loaded.Traces, st.Traces) {
		t.Error("traces did not survive the round trip")
	}
	// The dedup index must be rebuilt: resuming a loaded completed state is
	// a no-op, not a re-crawl.
	before := ts.requests()
	if err := c.ResumeDelivered(bg, 3, loaded); err != nil {
		t.Fatal(err)
	}
	if ts.requests() != before {
		t.Error("resuming a completed loaded state issued requests")
	}
}

func TestLoadCrawlStateRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCrawlState(path); err == nil {
		t.Fatal("garbage checkpoint should not decode")
	}
}

func TestCrawlerCheckpointSurvivesProcessDeath(t *testing.T) {
	traces := syntheticTraces(12)
	// Phase one: the relay dies from the third request on, exhausting
	// retries and resumes — as if the crawler process was then killed.
	var healed atomic.Bool
	ts := newTraceServer(t, traces, func(req int) int {
		if !healed.Load() && req >= 3 {
			return -1
		}
		return 0
	})
	dir := t.TempDir()
	newCrawler := func() *Crawler {
		c := fastClient("phoenix", ts.srv.URL, nil)
		c.Retry.MaxAttempts = 1
		return &Crawler{Clients: []*Client{c}, PageSize: 3, Resumes: 1, CheckpointDir: dir}
	}

	h := newCrawler().Run(bg)[0]
	if h.Err == nil || !h.Partial {
		t.Fatal("phase one should be a partial harvest")
	}
	ckpt := filepath.Join(dir, checkpointFileName("phoenix", PathDelivered))
	st, err := LoadCrawlState(ckpt)
	if err != nil {
		t.Fatalf("no checkpoint persisted: %v", err)
	}
	if st.Done || len(st.Traces) == 0 {
		t.Fatalf("checkpoint = %d traces done=%v, want partial progress", len(st.Traces), st.Done)
	}

	// Phase two: a fresh crawler (new process) against a healed relay picks
	// up from the persisted page instead of the top.
	healed.Store(true)
	before := ts.requests()
	h = newCrawler().Run(bg)[0]
	if h.Err != nil || h.Partial {
		t.Fatalf("phase two should complete: %v", h.Err)
	}
	if len(h.Delivered) != len(traces) || len(h.Received) != len(traces) {
		t.Errorf("harvest = %d/%d traces, want %d/%d",
			len(h.Delivered), len(h.Received), len(traces), len(traces))
	}
	// With the one-trace page overlap from cursor re-anchoring, a
	// from-scratch crawl of both endpoints takes 12 requests here; the
	// resumed delivered crawl must come in under that.
	if got := ts.requests() - before; got >= 12 {
		t.Errorf("resumed run issued %d requests, want fewer than a from-scratch crawl", got)
	}

	// Phase three: everything is checkpointed Done, so a third run issues no
	// requests at all.
	before = ts.requests()
	h = newCrawler().Run(bg)[0]
	if h.Err != nil || len(h.Delivered) != len(traces) {
		t.Fatalf("phase three should replay the completed harvest: %v", h.Err)
	}
	if ts.requests() != before {
		t.Error("fully checkpointed crawl issued requests")
	}
}
