package relayapi

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/ethpbs/pbslab/internal/builder"
	"github.com/ethpbs/pbslab/internal/chain"
	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/evm"
	"github.com/ethpbs/pbslab/internal/ofac"
	"github.com/ethpbs/pbslab/internal/pbs"
	"github.com/ethpbs/pbslab/internal/relay"
	"github.com/ethpbs/pbslab/internal/rng"
	"github.com/ethpbs/pbslab/internal/state"
	"github.com/ethpbs/pbslab/internal/types"
)

var bg = context.Background()

var (
	alice       = crypto.AddressFromSeed("alice")
	bob         = crypto.AddressFromSeed("bob")
	proposerFee = crypto.AddressFromSeed("proposer-fee")
)

type env struct {
	chain   *chain.Chain
	builder *builder.Builder
	relay   *relay.Relay
	valKey  *crypto.Key
	server  *httptest.Server
	client  *Client
	now     time.Time
}

func newEnv(t *testing.T) *env {
	t.Helper()
	st := state.New()
	st.SetBalance(alice, types.Ether(10_000))
	st.SetBalance(crypto.AddressFromSeed("builder/httptest"), types.Ether(100_000))
	c := chain.New(chain.MainnetMergeConfig(), evm.NewEngine(), st)
	b := builder.New(builder.Profile{
		Name: "httptest", Keys: 1, MarginETH: 0.0001, MempoolCoverage: 1,
	}, rng.New(1))

	e := &env{
		chain: c, builder: b,
		valKey: crypto.NewKey([]byte("validator")),
		now:    time.Date(2023, 1, 10, 12, 0, 0, 0, time.UTC),
	}
	r := relay.New(relay.Policy{Name: "HTTPRelay", Access: relay.AccessPermissionless},
		c, ofac.DefaultList())
	r.AllowBuilder(b.PubKeys()[0], b.VerificationKey(chain.MergeSlot+1))
	e.relay = r

	srv := NewServer(r, func() time.Time { return e.now })
	e.server = httptest.NewServer(srv)
	t.Cleanup(e.server.Close)
	e.client = NewClient("HTTPRelay", e.server.URL)
	return e
}

func (e *env) registerValidator(t *testing.T) {
	t.Helper()
	err := e.client.RegisterValidators(bg, []pbs.Registration{{
		Pubkey:       e.valKey.Pub(),
		FeeRecipient: proposerFee,
		GasLimit:     30_000_000,
		VerifyKey:    e.valKey.VerificationKey(),
	}})
	if err != nil {
		t.Fatalf("RegisterValidators: %v", err)
	}
}

func (e *env) submission(t *testing.T, tipGwei uint64, slot uint64) *pbs.Submission {
	t.Helper()
	tx := types.NewTransaction(0, alice, bob, types.Ether(1), 21_000,
		types.Gwei(200), types.Gwei(tipGwei), nil)
	args := builder.Args{
		Chain: e.chain, Slot: slot,
		ProposerPubkey:       e.valKey.Pub(),
		ProposerFeeRecipient: proposerFee,
		Pending:              []*types.Transaction{tx},
	}
	res, ok := e.builder.Build(args)
	if !ok {
		t.Fatal("build failed")
	}
	return e.builder.Submission(args, res)
}

func TestRoundTripCodecs(t *testing.T) {
	e := newEnv(t)
	sub := e.submission(t, 50, chain.MergeSlot+1)

	tr2, err := DecodeBidTrace(EncodeBidTrace(sub.Trace))
	if err != nil || tr2 != sub.Trace {
		t.Errorf("bid trace round trip: %v", err)
	}
	sj := EncodeSubmission(sub)
	sub2, err := DecodeSubmission(sj)
	if err != nil {
		t.Fatal(err)
	}
	if sub2.Block.Hash() != sub.Block.Hash() {
		t.Error("block hash changed over the wire")
	}
	if sub2.Signature != sub.Signature {
		t.Error("signature changed over the wire")
	}
	if len(sub2.Block.Txs) != len(sub.Block.Txs) {
		t.Error("tx count changed")
	}
	for i := range sub.Block.Txs {
		if sub2.Block.Txs[i].Hash() != sub.Block.Txs[i].Hash() {
			t.Errorf("tx %d hash changed", i)
		}
	}
}

func TestHTTPFullFlow(t *testing.T) {
	e := newEnv(t)
	e.registerValidator(t)
	sub := e.submission(t, 50, chain.MergeSlot+1)

	if err := e.client.SubmitBlock(bg, sub); err != nil {
		t.Fatalf("SubmitBlock over HTTP: %v", err)
	}

	parent := e.chain.Head().Block.Hash()
	bid, ok, err := e.client.GetHeader(bg, chain.MergeSlot+1, parent, e.valKey.Pub())
	if err != nil || !ok {
		t.Fatalf("GetHeader: ok=%v err=%v", ok, err)
	}
	if bid.Value != sub.Trace.Value {
		t.Errorf("bid value = %s, want %s", bid.Value, sub.Trace.Value)
	}

	signed := &pbs.SignedBlindedHeader{
		Slot: bid.Slot, BlockHash: bid.BlockHash,
		ProposerPubkey: e.valKey.Pub(),
		Signature:      pbs.SignBlindedHeader(e.valKey, bid.Slot, bid.BlockHash),
	}
	block, err := e.client.GetPayload(bg, signed)
	if err != nil {
		t.Fatalf("GetPayload: %v", err)
	}
	if block.Hash() != sub.Block.Hash() {
		t.Error("payload block hash mismatch")
	}
	// The revealed block is fully valid: the chain accepts it.
	if _, err := e.chain.Accept(block); err != nil {
		t.Fatalf("Accept: %v", err)
	}
}

func TestHTTPNoBid(t *testing.T) {
	e := newEnv(t)
	e.registerValidator(t)
	_, ok, err := e.client.GetHeader(bg, 12345, crypto.Keccak256([]byte("x")), e.valKey.Pub())
	if err != nil || ok {
		t.Errorf("expected empty bid, got ok=%v err=%v", ok, err)
	}
}

func TestHTTPSubmitRejection(t *testing.T) {
	e := newEnv(t)
	e.registerValidator(t)
	sub := e.submission(t, 50, chain.MergeSlot+1)
	sub.Trace.Value = sub.Trace.Value.Add(types.Ether(5)) // break the signature
	if err := e.client.SubmitBlock(bg, sub); err == nil {
		t.Error("tampered submission accepted over HTTP")
	}
}

func TestDataAPIPagination(t *testing.T) {
	e := newEnv(t)
	e.registerValidator(t)

	// Fill several slots' worth of received traces (one accepted block per
	// slot keeps the chain consistent).
	const slots = 7
	for i := uint64(1); i <= slots; i++ {
		sub := e.submission(t, 50, chain.MergeSlot+i)
		if err := e.client.SubmitBlock(bg, sub); err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
		if _, err := e.chain.Accept(sub.Block); err != nil {
			t.Fatalf("accept %d: %v", i, err)
		}
		// Record a delivery for the data API.
		bid, ok, err := e.client.GetHeader(bg, chain.MergeSlot+i, sub.Block.Header.ParentHash, e.valKey.Pub())
		if err != nil || !ok {
			t.Fatalf("GetHeader %d: %v", i, err)
		}
		signed := &pbs.SignedBlindedHeader{
			Slot: bid.Slot, BlockHash: bid.BlockHash,
			ProposerPubkey: e.valKey.Pub(),
			Signature:      pbs.SignBlindedHeader(e.valKey, bid.Slot, bid.BlockHash),
		}
		if _, err := e.client.GetPayload(bg, signed); err != nil {
			t.Fatalf("GetPayload %d: %v", i, err)
		}
	}

	// Crawl with a page size smaller than the record count.
	got, err := e.client.CrawlDelivered(bg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != slots {
		t.Fatalf("crawled %d delivered, want %d", len(got), slots)
	}
	// Descending slots, no duplicates.
	seen := map[uint64]bool{}
	for _, tr := range got {
		if seen[tr.Slot] {
			t.Fatal("duplicate slot in crawl")
		}
		seen[tr.Slot] = true
	}

	rec, err := e.client.CrawlReceived(bg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != slots {
		t.Fatalf("crawled %d received, want %d", len(rec), slots)
	}

	// Single-slot filter on the received endpoint.
	page, err := e.client.ReceivedPage(bg, chain.MergeSlot+3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) == 0 {
		t.Error("cursor page empty")
	}
}

func TestCrawlerMultiRelay(t *testing.T) {
	e1 := newEnv(t)
	e1.registerValidator(t)
	sub := e1.submission(t, 50, chain.MergeSlot+1)
	if err := e1.client.SubmitBlock(bg, sub); err != nil {
		t.Fatal(err)
	}

	e2 := newEnv(t) // independent relay with no data

	cr := &Crawler{Clients: []*Client{e1.client, e2.client}, PageSize: 10}
	harvests := cr.Run(bg)
	if len(harvests) != 2 {
		t.Fatalf("harvests = %d", len(harvests))
	}
	if harvests[0].Err != nil || harvests[1].Err != nil {
		t.Fatalf("errs: %v, %v", harvests[0].Err, harvests[1].Err)
	}
	if len(harvests[0].Received) != 1 {
		t.Errorf("relay1 received = %d", len(harvests[0].Received))
	}
	if len(harvests[1].Received) != 0 {
		t.Errorf("relay2 received = %d", len(harvests[1].Received))
	}
}

func TestHexHelpers(t *testing.T) {
	b, err := parseHexBytes("0xdeadBEEF")
	if err != nil || hexBytes(b) != "deadbeef" {
		t.Errorf("hex round trip: %x, %v", b, err)
	}
	if _, err := parseHexBytes("0xabc"); err == nil {
		t.Error("odd-length hex accepted")
	}
	if _, err := parseHexBytes("zz"); err == nil {
		t.Error("invalid hex accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeBidTrace(BidTraceJSON{Slot: "x"}); err == nil {
		t.Error("bad slot accepted")
	}
	if _, err := DecodeHeader(HeaderJSON{ParentHash: "0x12"}); err == nil {
		t.Error("bad parent hash accepted")
	}
	if _, err := DecodeTransaction(TransactionJSON{Nonce: "y"}); err == nil {
		t.Error("bad nonce accepted")
	}
	if _, err := DecodeSignedBlindedHeader(SignedBlindedHeaderJSON{Slot: "1", BlockHash: "0x", ProposerPubkey: "0x", Signature: "0x"}); err == nil {
		t.Error("bad blinded header accepted")
	}
}

func TestValidatorsEndpoint(t *testing.T) {
	e := newEnv(t)
	e.registerValidator(t)
	regs, err := e.client.Validators(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("validators = %d", len(regs))
	}
	if regs[0].Pubkey != e.valKey.Pub() || regs[0].FeeRecipient != proposerFee {
		t.Errorf("registration round trip: %+v", regs[0])
	}
	// And the verification key survives the wire, so header signatures can
	// be checked by the crawler's consumers.
	if regs[0].VerifyKey != e.valKey.VerificationKey() {
		t.Error("verify key mangled")
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	e := newEnv(t)

	get := func(path string) int {
		resp, err := http.Get(e.server.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	post := func(path, body string) int {
		resp, err := http.Post(e.server.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Wrong methods.
	if got := get(PathSubmitBlock); got != http.StatusMethodNotAllowed {
		t.Errorf("GET submit = %d", got)
	}
	if got := post(PathDelivered, "{}"); got != http.StatusMethodNotAllowed {
		t.Errorf("POST delivered = %d", got)
	}
	if got := post(PathReceived, "{}"); got != http.StatusMethodNotAllowed {
		t.Errorf("POST received = %d", got)
	}
	if got := post(PathValidators, "[]"); got != http.StatusMethodNotAllowed {
		t.Errorf("POST validators(list) = %d", got)
	}
	if got := get(PathGetPayload); got != http.StatusMethodNotAllowed {
		t.Errorf("GET payload = %d", got)
	}
	if got := post(PathGetHeader+"1/0xabc/0xdef", "{}"); got != http.StatusMethodNotAllowed {
		t.Errorf("POST header = %d", got)
	}

	// Malformed bodies and parameters.
	if got := post(PathSubmitBlock, "{not json"); got != http.StatusBadRequest {
		t.Errorf("bad submit body = %d", got)
	}
	if got := post(PathGetPayload, "{not json"); got != http.StatusBadRequest {
		t.Errorf("bad payload body = %d", got)
	}
	if got := post(PathRegisterVal, `[{"pubkey":"0xzz"}]`); got != http.StatusBadRequest {
		t.Errorf("bad registration = %d", got)
	}
	if got := get(PathGetHeader + "notanumber/0xabc/0xdef"); got != http.StatusBadRequest {
		t.Errorf("bad slot = %d", got)
	}
	if got := get(PathGetHeader + "1/onlyone"); got != http.StatusBadRequest {
		t.Errorf("bad header path = %d", got)
	}
	if got := get(PathDelivered + "?limit=-5"); got != http.StatusBadRequest {
		t.Errorf("bad limit = %d", got)
	}
	if got := get(PathDelivered + "?cursor=abc"); got != http.StatusBadRequest {
		t.Errorf("bad cursor = %d", got)
	}
	if got := get(PathReceived + "?slot=xyz"); got != http.StatusBadRequest {
		t.Errorf("bad slot filter = %d", got)
	}
}

func TestRelayNameHeader(t *testing.T) {
	e := newEnv(t)
	resp, err := http.Get(e.server.URL + PathDelivered)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Relay-Name"); got != "HTTPRelay" {
		t.Errorf("relay name header = %q", got)
	}
}

func TestClientDefaultHTTP(t *testing.T) {
	c := &Client{Name: "x", BaseURL: "http://127.0.0.1:1", Retry: RetryPolicy{MaxAttempts: 1}}
	if c.httpClient() != http.DefaultClient {
		t.Error("nil HTTP should fall back to default client")
	}
	// And an unreachable endpoint surfaces an error.
	if _, err := c.DeliveredPage(bg, ^uint64(0), 5); err == nil {
		t.Error("unreachable endpoint succeeded")
	}
}
