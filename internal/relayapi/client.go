package relayapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/pbs"
	"github.com/ethpbs/pbslab/internal/types"
)

// Client talks to one relay's HTTP API.
type Client struct {
	// Name labels the relay in crawler output.
	Name string
	// BaseURL is the relay endpoint (no trailing slash).
	BaseURL string
	// HTTP is the underlying client; defaults to a 10s-timeout client.
	HTTP *http.Client
}

// NewClient builds a client for a relay endpoint.
func NewClient(name, baseURL string) *Client {
	return &Client{
		Name:    name,
		BaseURL: baseURL,
		HTTP:    &http.Client{Timeout: 10 * time.Second},
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) getJSON(path string, out interface{}) error {
	resp, err := c.httpClient().Get(c.BaseURL + path)
	if err != nil {
		return fmt.Errorf("relayapi: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return errNoContent
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("relayapi: GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) postJSON(path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Post(c.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("relayapi: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("relayapi: POST %s: status %d: %s", path, resp.StatusCode, msg)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

var errNoContent = fmt.Errorf("relayapi: no content")

// SubmitBlock posts a builder submission.
func (c *Client) SubmitBlock(sub *pbs.Submission) error {
	return c.postJSON(PathSubmitBlock, EncodeSubmission(sub), nil)
}

// GetHeader fetches the blinded bid for a slot. ok=false when the relay has
// no bid.
func (c *Client) GetHeader(slot uint64, parent types.Hash, pub types.PubKey) (*pbs.Bid, bool, error) {
	path := fmt.Sprintf("%s%d/%s/%s", PathGetHeader, slot, parent.Hex(), pub.Hex())
	var j BidJSON
	if err := c.getJSON(path, &j); err != nil {
		if err == errNoContent {
			return nil, false, nil
		}
		return nil, false, err
	}
	bid, err := DecodeBid(j)
	if err != nil {
		return nil, false, err
	}
	return bid, true, nil
}

// GetPayload exchanges a signed blinded header for the full payload.
func (c *Client) GetPayload(signed *pbs.SignedBlindedHeader) (*types.Block, error) {
	var resp struct {
		Header       HeaderJSON        `json:"header"`
		Transactions []TransactionJSON `json:"transactions"`
	}
	if err := c.postJSON(PathGetPayload, EncodeSignedBlindedHeader(signed), &resp); err != nil {
		return nil, err
	}
	header, err := DecodeHeader(resp.Header)
	if err != nil {
		return nil, err
	}
	txs := make([]*types.Transaction, 0, len(resp.Transactions))
	for i, tj := range resp.Transactions {
		tx, err := DecodeTransaction(tj)
		if err != nil {
			return nil, fmt.Errorf("relayapi: payload tx %d: %w", i, err)
		}
		txs = append(txs, tx)
	}
	return types.NewBlock(header, txs), nil
}

// RegisterValidators posts validator registrations.
func (c *Client) RegisterValidators(regs []pbs.Registration) error {
	payload := make([]registrationJSON, 0, len(regs))
	for _, r := range regs {
		payload = append(payload, registrationJSON{
			Pubkey:       r.Pubkey.Hex(),
			FeeRecipient: r.FeeRecipient.Hex(),
			GasLimit:     strconv.FormatUint(r.GasLimit, 10),
			VerifyKey:    r.VerifyKey.Hex(),
		})
	}
	return c.postJSON(PathRegisterVal, payload, nil)
}

// Validators fetches the relay's current proposer registrations.
func (c *Client) Validators() ([]pbs.Registration, error) {
	var page []registrationJSON
	if err := c.getJSON(PathValidators, &page); err != nil {
		return nil, err
	}
	out := make([]pbs.Registration, 0, len(page))
	for _, j := range page {
		pub, err := crypto.ParsePubKey(j.Pubkey)
		if err != nil {
			return nil, fmt.Errorf("relayapi: pubkey: %w", err)
		}
		fee, err := crypto.ParseAddress(j.FeeRecipient)
		if err != nil {
			return nil, fmt.Errorf("relayapi: fee recipient: %w", err)
		}
		gasLimit, err := strconv.ParseUint(j.GasLimit, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("relayapi: gas limit: %w", err)
		}
		vk, err := crypto.ParseHash(j.VerifyKey)
		if err != nil {
			return nil, fmt.Errorf("relayapi: verify key: %w", err)
		}
		out = append(out, pbs.Registration{
			Pubkey: pub, FeeRecipient: fee, GasLimit: gasLimit, VerifyKey: vk,
		})
	}
	return out, nil
}

// DeliveredPage fetches one page of proposer_payload_delivered.
func (c *Client) DeliveredPage(cursor uint64, limit int) ([]pbs.BidTrace, error) {
	return c.tracePage(PathDelivered, cursor, limit)
}

// ReceivedPage fetches one page of builder_blocks_received.
func (c *Client) ReceivedPage(cursor uint64, limit int) ([]pbs.BidTrace, error) {
	return c.tracePage(PathReceived, cursor, limit)
}

func (c *Client) tracePage(path string, cursor uint64, limit int) ([]pbs.BidTrace, error) {
	v := url.Values{}
	v.Set(queryParamLimit, strconv.Itoa(limit))
	if cursor != ^uint64(0) {
		v.Set(queryParamCursor, strconv.FormatUint(cursor, 10))
	}
	var page []BidTraceJSON
	if err := c.getJSON(path+"?"+v.Encode(), &page); err != nil {
		return nil, err
	}
	out := make([]pbs.BidTrace, 0, len(page))
	for _, j := range page {
		tr, err := DecodeBidTrace(j)
		if err != nil {
			return nil, err
		}
		out = append(out, tr)
	}
	return out, nil
}

// CrawlDelivered walks the delivered endpoint to exhaustion, following the
// descending-slot cursor exactly as the paper's crawler did.
func (c *Client) CrawlDelivered(pageSize int) ([]pbs.BidTrace, error) {
	return c.crawl(PathDelivered, pageSize)
}

// CrawlReceived walks the received endpoint to exhaustion.
func (c *Client) CrawlReceived(pageSize int) ([]pbs.BidTrace, error) {
	return c.crawl(PathReceived, pageSize)
}

func (c *Client) crawl(path string, pageSize int) ([]pbs.BidTrace, error) {
	var all []pbs.BidTrace
	seen := map[types.Hash]bool{}
	cursor := ^uint64(0)
	for {
		page, err := c.tracePage(path, cursor, pageSize)
		if err != nil {
			return nil, err
		}
		progressed := false
		for _, tr := range page {
			if seen[tr.BlockHash] {
				continue
			}
			seen[tr.BlockHash] = true
			all = append(all, tr)
			progressed = true
		}
		if len(page) < pageSize {
			return all, nil
		}
		last := page[len(page)-1].Slot
		if progressed {
			// Re-anchor at the last slot: same-slot ties that straddled the
			// page boundary are re-served and deduplicated.
			cursor = last
			continue
		}
		// A full page of already-seen traces: the whole slot group has been
		// consumed; step past it.
		if last == 0 {
			return all, nil
		}
		cursor = last - 1
	}
}

// Crawler harvests every relay's data API, as Section 3.3 describes.
type Crawler struct {
	Clients []*Client
	// PageSize bounds each request.
	PageSize int
}

// Harvest is a crawl result for one relay.
type Harvest struct {
	Relay     string
	Delivered []pbs.BidTrace
	Received  []pbs.BidTrace
	Err       error
}

// Run crawls all relays sequentially (deterministic order).
func (cr *Crawler) Run() []Harvest {
	size := cr.PageSize
	if size <= 0 {
		size = defaultPageLimit
	}
	out := make([]Harvest, 0, len(cr.Clients))
	for _, cl := range cr.Clients {
		h := Harvest{Relay: cl.Name}
		h.Delivered, h.Err = cl.CrawlDelivered(size)
		if h.Err == nil {
			h.Received, h.Err = cl.CrawlReceived(size)
		}
		out = append(out, h)
	}
	return out
}
