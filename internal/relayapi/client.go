package relayapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/ethpbs/pbslab/internal/backoff"
	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/pbs"
	"github.com/ethpbs/pbslab/internal/types"
)

// RetryPolicy governs idempotent GET retries: capped exponential backoff
// with deterministic jitter drawn from Seed, honouring Retry-After on 429s.
type RetryPolicy struct {
	// MaxAttempts bounds total tries per request (first try included).
	MaxAttempts int
	// BaseDelay is the first backoff; each retry doubles it up to MaxDelay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed feeds the deterministic jitter stream (per client name).
	Seed uint64
}

const (
	defaultMaxAttempts = 4
	defaultBaseDelay   = 50 * time.Millisecond
	defaultMaxDelay    = 2 * time.Second
	defaultTimeout     = 10 * time.Second
	defaultMaxBody     = 8 << 20 // 8 MiB per response
	defaultMaxPages    = 10_000
	defaultStallLimit  = 8
)

var (
	errNoContent = errors.New("relayapi: no content")
	// ErrBadContentType flags a response that is not application/json; the
	// body is never fed to the decoder.
	ErrBadContentType = errors.New("relayapi: non-JSON content type")
	// ErrCrawlStalled flags a relay that re-serves the same page without the
	// cursor making progress — the unbounded-loop hazard of a misbehaving
	// data API.
	ErrCrawlStalled = errors.New("relayapi: crawl stalled")
	// ErrTooManyPages flags a crawl that exceeded the page cap.
	ErrTooManyPages = errors.New("relayapi: crawl exceeded page cap")
)

// Client talks to one relay's HTTP API.
type Client struct {
	// Name labels the relay in crawler output.
	Name string
	// BaseURL is the relay endpoint (no trailing slash).
	BaseURL string
	// HTTP is the underlying client; defaults to http.DefaultClient. The
	// per-request Timeout below applies regardless.
	HTTP *http.Client
	// Retry governs idempotent GET retries; zero fields take defaults.
	Retry RetryPolicy
	// Timeout bounds each individual request attempt (default 10s).
	Timeout time.Duration
	// MaxBodyBytes bounds how much of a response body is decoded
	// (default 8 MiB).
	MaxBodyBytes int64
	// MaxPages caps one crawl's page count (default 10000).
	MaxPages int
	// StallLimit is how many consecutive no-progress pages a crawl
	// tolerates before declaring the relay stalled (default 8).
	StallLimit int
	// Sleep implements backoff waits; defaults to time.Sleep. Tests inject
	// a recorder.
	Sleep func(time.Duration)

	statsMu sync.Mutex
	retries int
	jitter  *backoff.Jitter
}

// NewClient builds a client for a relay endpoint with default fault
// tolerance: 10s per-attempt timeout, 4 attempts with 50ms–2s backoff.
func NewClient(name, baseURL string) *Client {
	return &Client{Name: name, BaseURL: baseURL}
}

// Retries reports how many request retries this client has performed.
func (c *Client) Retries() int {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.retries
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) maxAttempts() int {
	if c.Retry.MaxAttempts > 0 {
		return c.Retry.MaxAttempts
	}
	return defaultMaxAttempts
}

func (c *Client) baseDelay() time.Duration {
	if c.Retry.BaseDelay > 0 {
		return c.Retry.BaseDelay
	}
	return defaultBaseDelay
}

func (c *Client) maxDelay() time.Duration {
	if c.Retry.MaxDelay > 0 {
		return c.Retry.MaxDelay
	}
	return defaultMaxDelay
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return defaultTimeout
}

func (c *Client) maxBody() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return defaultMaxBody
}

func (c *Client) maxPages() int {
	if c.MaxPages > 0 {
		return c.MaxPages
	}
	return defaultMaxPages
}

func (c *Client) stallLimit() int {
	if c.StallLimit > 0 {
		return c.StallLimit
	}
	return defaultStallLimit
}

func (c *Client) sleep(d time.Duration) {
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}

// backoffDelay computes the wait before retry number attempt (1-based) by
// delegating to the shared backoff policy: capped exponential backoff scaled
// by a deterministic jitter factor in [0.5, 1), never shorter than the
// server's Retry-After hint.
func (c *Client) backoffDelay(attempt int, retryAfter time.Duration) time.Duration {
	c.statsMu.Lock()
	if c.jitter == nil {
		c.jitter = backoff.NewJitter(c.Retry.Seed, "relayapi/retry/"+c.Name)
	}
	j := c.jitter
	c.statsMu.Unlock()
	return backoff.Policy{Base: c.baseDelay(), Max: c.maxDelay()}.Delay(attempt, retryAfter, j)
}

func (c *Client) countRetry() {
	c.statsMu.Lock()
	c.retries++
	c.statsMu.Unlock()
}

// checkContentType rejects anything but JSON before the decoder sees it.
func checkContentType(resp *http.Response) error {
	ct := resp.Header.Get("Content-Type")
	if ct == "" {
		return fmt.Errorf("%w: missing Content-Type", ErrBadContentType)
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil || (mt != "application/json" && !strings.HasSuffix(mt, "+json")) {
		return fmt.Errorf("%w: %q", ErrBadContentType, ct)
	}
	return nil
}

// getOnce performs a single GET attempt. retryable marks transport errors,
// 5xx, 429 and body-truncation decode failures; protocol errors (bad
// status, wrong content type) are final.
func (c *Client) getOnce(ctx context.Context, path string, out interface{}) (err error, retryable bool, retryAfter time.Duration) {
	rctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return fmt.Errorf("relayapi: GET %s: %w", path, err), false, 0
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// The parent context being done makes retrying pointless.
		return fmt.Errorf("relayapi: GET %s: %w", path, err), ctx.Err() == nil, 0
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNoContent:
		return errNoContent, false, 0
	case resp.StatusCode == http.StatusTooManyRequests:
		retryAfter = backoff.ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
		return fmt.Errorf("relayapi: GET %s: status 429", path), true, retryAfter
	case resp.StatusCode >= 500:
		return fmt.Errorf("relayapi: GET %s: status %d", path, resp.StatusCode), true, 0
	case resp.StatusCode != http.StatusOK:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("relayapi: GET %s: status %d: %s", path, resp.StatusCode, body), false, 0
	}
	if err := checkContentType(resp); err != nil {
		return fmt.Errorf("relayapi: GET %s: %w", path, err), false, 0
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, c.maxBody())).Decode(out); err != nil {
		// Truncated or garbled bodies are a transport fault: retry.
		return fmt.Errorf("relayapi: GET %s: decode: %w", path, err), true, 0
	}
	return nil, false, 0
}

// getJSON is the retrying GET core: idempotent requests are retried with
// capped exponential backoff and deterministic jitter.
func (c *Client) getJSON(ctx context.Context, path string, out interface{}) error {
	var lastErr error
	attempts := c.maxAttempts()
	for attempt := 0; attempt < attempts; attempt++ {
		err, retryable, retryAfter := c.getOnce(ctx, path, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || attempt+1 >= attempts || ctx.Err() != nil {
			break
		}
		c.countRetry()
		c.sleep(c.backoffDelay(attempt+1, retryAfter))
	}
	return lastErr
}

func (c *Client) postJSON(ctx context.Context, path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	rctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("relayapi: POST %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("relayapi: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("relayapi: POST %s: status %d: %s", path, resp.StatusCode, msg)
	}
	if out != nil {
		if err := checkContentType(resp); err != nil {
			return fmt.Errorf("relayapi: POST %s: %w", path, err)
		}
		return json.NewDecoder(io.LimitReader(resp.Body, c.maxBody())).Decode(out)
	}
	return nil
}

// SubmitBlock posts a builder submission.
func (c *Client) SubmitBlock(ctx context.Context, sub *pbs.Submission) error {
	return c.postJSON(ctx, PathSubmitBlock, EncodeSubmission(sub), nil)
}

// GetHeader fetches the blinded bid for a slot. ok=false when the relay has
// no bid.
func (c *Client) GetHeader(ctx context.Context, slot uint64, parent types.Hash, pub types.PubKey) (*pbs.Bid, bool, error) {
	path := fmt.Sprintf("%s%d/%s/%s", PathGetHeader, slot, parent.Hex(), pub.Hex())
	var j BidJSON
	if err := c.getJSON(ctx, path, &j); err != nil {
		if err == errNoContent {
			return nil, false, nil
		}
		return nil, false, err
	}
	bid, err := DecodeBid(j)
	if err != nil {
		return nil, false, err
	}
	return bid, true, nil
}

// GetPayload exchanges a signed blinded header for the full payload.
func (c *Client) GetPayload(ctx context.Context, signed *pbs.SignedBlindedHeader) (*types.Block, error) {
	var resp struct {
		Header       HeaderJSON        `json:"header"`
		Transactions []TransactionJSON `json:"transactions"`
	}
	if err := c.postJSON(ctx, PathGetPayload, EncodeSignedBlindedHeader(signed), &resp); err != nil {
		return nil, err
	}
	header, err := DecodeHeader(resp.Header)
	if err != nil {
		return nil, err
	}
	txs := make([]*types.Transaction, 0, len(resp.Transactions))
	for i, tj := range resp.Transactions {
		tx, err := DecodeTransaction(tj)
		if err != nil {
			return nil, fmt.Errorf("relayapi: payload tx %d: %w", i, err)
		}
		txs = append(txs, tx)
	}
	return types.NewBlock(header, txs), nil
}

// RegisterValidators posts validator registrations.
func (c *Client) RegisterValidators(ctx context.Context, regs []pbs.Registration) error {
	payload := make([]registrationJSON, 0, len(regs))
	for _, r := range regs {
		payload = append(payload, registrationJSON{
			Pubkey:       r.Pubkey.Hex(),
			FeeRecipient: r.FeeRecipient.Hex(),
			GasLimit:     strconv.FormatUint(r.GasLimit, 10),
			VerifyKey:    r.VerifyKey.Hex(),
		})
	}
	return c.postJSON(ctx, PathRegisterVal, payload, nil)
}

// Validators fetches the relay's current proposer registrations.
func (c *Client) Validators(ctx context.Context) ([]pbs.Registration, error) {
	var page []registrationJSON
	if err := c.getJSON(ctx, PathValidators, &page); err != nil {
		return nil, err
	}
	out := make([]pbs.Registration, 0, len(page))
	for _, j := range page {
		pub, err := crypto.ParsePubKey(j.Pubkey)
		if err != nil {
			return nil, fmt.Errorf("relayapi: pubkey: %w", err)
		}
		fee, err := crypto.ParseAddress(j.FeeRecipient)
		if err != nil {
			return nil, fmt.Errorf("relayapi: fee recipient: %w", err)
		}
		gasLimit, err := strconv.ParseUint(j.GasLimit, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("relayapi: gas limit: %w", err)
		}
		vk, err := crypto.ParseHash(j.VerifyKey)
		if err != nil {
			return nil, fmt.Errorf("relayapi: verify key: %w", err)
		}
		out = append(out, pbs.Registration{
			Pubkey: pub, FeeRecipient: fee, GasLimit: gasLimit, VerifyKey: vk,
		})
	}
	return out, nil
}

// DeliveredPage fetches one page of proposer_payload_delivered.
func (c *Client) DeliveredPage(ctx context.Context, cursor uint64, limit int) ([]pbs.BidTrace, error) {
	return c.tracePage(ctx, PathDelivered, cursor, limit)
}

// ReceivedPage fetches one page of builder_blocks_received.
func (c *Client) ReceivedPage(ctx context.Context, cursor uint64, limit int) ([]pbs.BidTrace, error) {
	return c.tracePage(ctx, PathReceived, cursor, limit)
}

func (c *Client) tracePage(ctx context.Context, path string, cursor uint64, limit int) ([]pbs.BidTrace, error) {
	v := url.Values{}
	v.Set(queryParamLimit, strconv.Itoa(limit))
	if cursor != ^uint64(0) {
		v.Set(queryParamCursor, strconv.FormatUint(cursor, 10))
	}
	var page []BidTraceJSON
	if err := c.getJSON(ctx, path+"?"+v.Encode(), &page); err != nil {
		return nil, err
	}
	out := make([]pbs.BidTrace, 0, len(page))
	for _, j := range page {
		tr, err := DecodeBidTrace(j)
		if err != nil {
			return nil, err
		}
		out = append(out, tr)
	}
	return out, nil
}

// CrawlState checkpoints a crawl so a mid-crawl failure resumes where it
// left off instead of restarting from the top.
type CrawlState struct {
	// Cursor is the next page's descending-slot cursor.
	Cursor uint64
	// Traces accumulates the deduplicated harvest so far.
	Traces []pbs.BidTrace
	// Pages counts fetched pages; Stall counts consecutive no-progress
	// pages.
	Pages int
	Stall int
	// Done marks a completed crawl.
	Done bool

	seen map[types.Hash]bool
}

// NewCrawlState starts a crawl from the newest slot.
func NewCrawlState() *CrawlState {
	return &CrawlState{Cursor: ^uint64(0), seen: map[types.Hash]bool{}}
}

func (st *CrawlState) ensureSeen() {
	if st.seen != nil {
		return
	}
	st.seen = make(map[types.Hash]bool, len(st.Traces))
	for _, tr := range st.Traces {
		st.seen[tr.BlockHash] = true
	}
}

// crawlFrom walks a paginated bidtrace endpoint from the checkpoint to
// exhaustion, following the descending-slot cursor exactly as the paper's
// crawler did. On error the state holds everything harvested so far; the
// caller may retry crawlFrom with the same state to resume. Two watchdogs
// bound misbehaving relays: a relay whose cursor stops descending trips
// ErrCrawlStalled, and MaxPages trips ErrTooManyPages.
func (c *Client) crawlFrom(ctx context.Context, path string, pageSize int, st *CrawlState) error {
	st.ensureSeen()
	for !st.Done {
		if st.Pages >= c.maxPages() {
			return fmt.Errorf("%w: %s after %d pages", ErrTooManyPages, c.Name, st.Pages)
		}
		page, err := c.tracePage(ctx, path, st.Cursor, pageSize)
		if err != nil {
			return err
		}
		st.Pages++
		progressed := false
		for _, tr := range page {
			if st.seen[tr.BlockHash] {
				continue
			}
			st.seen[tr.BlockHash] = true
			st.Traces = append(st.Traces, tr)
			progressed = true
		}
		if len(page) < pageSize {
			st.Done = true
			return nil
		}
		last := page[len(page)-1].Slot
		if progressed {
			// Re-anchor at the last slot: same-slot ties that straddled the
			// page boundary are re-served and deduplicated.
			st.Stall = 0
			st.Cursor = last
			continue
		}
		// A full page of already-seen traces. An honest relay only serves
		// slots <= cursor, so the next cursor must strictly descend; a relay
		// re-serving the same page regardless of cursor would loop forever.
		if last > st.Cursor {
			return fmt.Errorf("%w: %s re-served slot %d above cursor %d", ErrCrawlStalled, c.Name, last, st.Cursor)
		}
		st.Stall++
		if st.Stall >= c.stallLimit() {
			return fmt.Errorf("%w: %s made no progress for %d pages", ErrCrawlStalled, c.Name, st.Stall)
		}
		if last == 0 {
			st.Done = true
			return nil
		}
		st.Cursor = last - 1
	}
	return nil
}

// ResumeDelivered continues (or starts) a delivered crawl from a
// checkpoint.
func (c *Client) ResumeDelivered(ctx context.Context, pageSize int, st *CrawlState) error {
	return c.crawlFrom(ctx, PathDelivered, pageSize, st)
}

// ResumeReceived continues (or starts) a received crawl from a checkpoint.
func (c *Client) ResumeReceived(ctx context.Context, pageSize int, st *CrawlState) error {
	return c.crawlFrom(ctx, PathReceived, pageSize, st)
}

// CrawlDelivered walks the delivered endpoint to exhaustion.
func (c *Client) CrawlDelivered(ctx context.Context, pageSize int) ([]pbs.BidTrace, error) {
	st := NewCrawlState()
	err := c.crawlFrom(ctx, PathDelivered, pageSize, st)
	return st.Traces, err
}

// CrawlReceived walks the received endpoint to exhaustion.
func (c *Client) CrawlReceived(ctx context.Context, pageSize int) ([]pbs.BidTrace, error) {
	st := NewCrawlState()
	err := c.crawlFrom(ctx, PathReceived, pageSize, st)
	return st.Traces, err
}

// Crawler harvests every relay's data API, as Section 3.3 describes, with
// bounded parallelism and per-relay resume on transient failures.
type Crawler struct {
	Clients []*Client
	// PageSize bounds each request.
	PageSize int
	// Parallelism bounds concurrent relay crawls (default 4). Each relay is
	// crawled by exactly one goroutine, so per-relay request order — and
	// with it any seeded fault injection — stays deterministic.
	Parallelism int
	// Resumes is how many times a failed crawl is resumed from its
	// checkpoint before the harvest is returned partial (default 2).
	Resumes int
	// CheckpointDir, when set, persists each relay/endpoint crawl state to
	// disk (atomic writes) after every attempt. A later Run with the same
	// directory resumes partial harvests from their last page and skips
	// completed ones entirely.
	CheckpointDir string
}

// Harvest is a crawl result for one relay.
type Harvest struct {
	Relay     string
	Delivered []pbs.BidTrace
	Received  []pbs.BidTrace
	// Err is the final error of an incomplete crawl; Partial marks that the
	// trace slices hold only what was harvested before it.
	Err     error
	Partial bool
	// Retries counts this relay's request-level retries; Resumes counts
	// checkpoint resumes after exhausted retries.
	Retries int
	Resumes int
}

func (cr *Crawler) parallelism() int {
	if cr.Parallelism > 0 {
		return cr.Parallelism
	}
	return 4
}

func (cr *Crawler) maxResumes() int {
	if cr.Resumes > 0 {
		return cr.Resumes
	}
	return 2
}

// Run crawls all relays concurrently. Results are index-aligned with
// Clients, so output order is deterministic regardless of scheduling.
func (cr *Crawler) Run(ctx context.Context) []Harvest {
	size := cr.PageSize
	if size <= 0 {
		size = defaultPageLimit
	}
	if cr.CheckpointDir != "" {
		if err := os.MkdirAll(cr.CheckpointDir, 0o755); err != nil {
			out := make([]Harvest, len(cr.Clients))
			for i, cl := range cr.Clients {
				out[i] = Harvest{Relay: cl.Name, Err: err, Partial: true}
			}
			return out
		}
	}
	out := make([]Harvest, len(cr.Clients))
	sem := make(chan struct{}, cr.parallelism())
	var wg sync.WaitGroup
	for i, cl := range cr.Clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = cr.harvestOne(ctx, cl, size)
		}(i, cl)
	}
	wg.Wait()
	return out
}

func (cr *Crawler) harvestOne(ctx context.Context, cl *Client, size int) Harvest {
	h := Harvest{Relay: cl.Name}
	before := cl.Retries()
	var st *CrawlState
	st, h.Err = cr.crawlResumed(ctx, cl, PathDelivered, size, &h.Resumes)
	h.Delivered = st.Traces
	if h.Err == nil {
		st, h.Err = cr.crawlResumed(ctx, cl, PathReceived, size, &h.Resumes)
		h.Received = st.Traces
	}
	h.Partial = h.Err != nil
	h.Retries = cl.Retries() - before
	return h
}

// crawlResumed drives one endpoint's crawl, resuming from the checkpoint on
// transient failures. Watchdog errors (stall, page cap) are final: the
// relay is misbehaving, not flaking.
func (cr *Crawler) crawlResumed(ctx context.Context, cl *Client, path string, size int, resumes *int) (*CrawlState, error) {
	st := NewCrawlState()
	ckpt := ""
	if cr.CheckpointDir != "" {
		ckpt = filepath.Join(cr.CheckpointDir, checkpointFileName(cl.Name, path))
		if loaded, err := LoadCrawlState(ckpt); err == nil {
			// A missing or undecodable checkpoint simply starts fresh.
			st = loaded
		}
	}
	save := func() {
		if ckpt != "" {
			_ = st.Save(ckpt)
		}
	}
	var err error
	for attempt := 0; attempt <= cr.maxResumes(); attempt++ {
		if attempt > 0 {
			*resumes++
		}
		err = cl.crawlFrom(ctx, path, size, st)
		save()
		if err == nil {
			return st, nil
		}
		if errors.Is(err, ErrCrawlStalled) || errors.Is(err, ErrTooManyPages) || ctx.Err() != nil {
			break
		}
	}
	return st, err
}
