package relayapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/pbs"
	"github.com/ethpbs/pbslab/internal/relay"
)

// API paths, following the Flashbots relay specification's layout.
const (
	PathSubmitBlock   = "/relay/v1/builder/blocks"
	PathGetHeader     = "/eth/v1/builder/header/" // + {slot}/{parent_hash}/{pubkey}
	PathGetPayload    = "/eth/v1/builder/blinded_blocks"
	PathDelivered     = "/relay/v1/data/bidtraces/proposer_payload_delivered"
	PathReceived      = "/relay/v1/data/bidtraces/builder_blocks_received"
	PathRegisterVal   = "/eth/v1/builder/validators"
	PathValidators    = "/relay/v1/data/validator_registration"
	defaultPageLimit  = 100
	maxPageLimit      = 500
	errorContentType  = "application/json"
	headerRelayName   = "X-Relay-Name"
	queryParamSlot    = "slot"
	queryParamCursor  = "cursor"
	queryParamLimit   = "limit"
	queryParamBuilder = "builder_pubkey"
)

// Clock supplies the server's notion of now; the simulator injects virtual
// time so HTTP flows stay deterministic.
type Clock func() time.Time

// Server exposes one relay over HTTP. The relay itself is single-threaded;
// the server serializes access with a mutex, which is exactly what a relay's
// storage layer does.
type Server struct {
	mu    sync.Mutex
	relay *relay.Relay
	clock Clock
	mux   *http.ServeMux
}

// NewServer wraps a relay.
func NewServer(r *relay.Relay, clock Clock) *Server {
	s := &Server{relay: r, clock: clock, mux: http.NewServeMux()}
	s.mux.HandleFunc(PathSubmitBlock, s.handleSubmitBlock)
	s.mux.HandleFunc(PathGetHeader, s.handleGetHeader)
	s.mux.HandleFunc(PathGetPayload, s.handleGetPayload)
	s.mux.HandleFunc(PathDelivered, s.handleDelivered)
	s.mux.HandleFunc(PathReceived, s.handleReceived)
	s.mux.HandleFunc(PathRegisterVal, s.handleRegisterValidator)
	s.mux.HandleFunc(PathValidators, s.handleValidators)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(headerRelayName, s.relay.Name)
	s.mux.ServeHTTP(w, r)
}

type errorJSON struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", errorContentType)
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorJSON{Code: code, Message: msg})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmitBlock(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var j SubmissionJSON
	if err := json.NewDecoder(r.Body).Decode(&j); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	sub, err := DecodeSubmission(j)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	err = s.relay.SubmitBlock(s.clock(), sub)
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (s *Server) handleGetHeader(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, PathGetHeader)
	parts := strings.Split(rest, "/")
	if len(parts) != 3 {
		writeError(w, http.StatusBadRequest, "want /header/{slot}/{parent_hash}/{pubkey}")
		return
	}
	slot, err := strconv.ParseUint(parts[0], 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad slot")
		return
	}
	pub, err := crypto.ParsePubKey(parts[2])
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad pubkey")
		return
	}
	s.mu.Lock()
	bid, err := s.relay.GetHeader(slot, pub)
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusNoContent, err.Error())
		return
	}
	writeJSON(w, EncodeBid(bid))
}

func (s *Server) handleGetPayload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var j SignedBlindedHeaderJSON
	if err := json.NewDecoder(r.Body).Decode(&j); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	signed, err := DecodeSignedBlindedHeader(j)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	block, err := s.relay.GetPayload(s.clock(), signed)
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := struct {
		Header       HeaderJSON        `json:"header"`
		Transactions []TransactionJSON `json:"transactions"`
	}{Header: EncodeHeader(block.Header)}
	for _, tx := range block.Txs {
		resp.Transactions = append(resp.Transactions, EncodeTransaction(tx))
	}
	writeJSON(w, resp)
}

type registrationJSON struct {
	Pubkey       string `json:"pubkey"`
	FeeRecipient string `json:"fee_recipient"`
	GasLimit     string `json:"gas_limit"`
	VerifyKey    string `json:"verify_key"`
}

func (s *Server) handleRegisterValidator(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var regs []registrationJSON
	if err := json.NewDecoder(r.Body).Decode(&regs); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	for _, rj := range regs {
		pub, err := crypto.ParsePubKey(rj.Pubkey)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad pubkey")
			return
		}
		fee, err := crypto.ParseAddress(rj.FeeRecipient)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad fee recipient")
			return
		}
		gasLimit, err := strconv.ParseUint(rj.GasLimit, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad gas limit")
			return
		}
		vk, err := crypto.ParseHash(rj.VerifyKey)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad verify key")
			return
		}
		s.mu.Lock()
		s.relay.RegisterValidator(pbs.Registration{
			Pubkey: pub, FeeRecipient: fee, GasLimit: gasLimit,
			VerifyKey: vk, Timestamp: s.clock(),
		})
		s.mu.Unlock()
	}
	w.WriteHeader(http.StatusOK)
}

// handleValidators lists the proposers currently registered with the relay
// (the third dataset the paper's crawler collected per relay).
func (s *Server) handleValidators(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.mu.Lock()
	regs := s.relay.Registrations()
	s.mu.Unlock()
	out := make([]registrationJSON, 0, len(regs))
	for _, reg := range regs {
		out = append(out, registrationJSON{
			Pubkey:       reg.Pubkey.Hex(),
			FeeRecipient: reg.FeeRecipient.Hex(),
			GasLimit:     strconv.FormatUint(reg.GasLimit, 10),
			VerifyKey:    reg.VerifyKey.Hex(),
		})
	}
	writeJSON(w, out)
}

// handleDelivered serves proposer_payload_delivered with descending-slot
// cursor pagination, the scheme the paper's crawler walks.
func (s *Server) handleDelivered(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	limit, cursor, err := pageParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	entries := s.relay.Delivered()
	traces := make([]pbs.BidTrace, len(entries))
	for i, e := range entries {
		traces[i] = e.Trace
	}
	s.mu.Unlock()
	writeJSON(w, pageTraces(traces, limit, cursor))
}

func (s *Server) handleReceived(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query()
	if slotStr := q.Get(queryParamSlot); slotStr != "" {
		slot, err := strconv.ParseUint(slotStr, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad slot")
			return
		}
		s.mu.Lock()
		all := s.relay.Received()
		s.mu.Unlock()
		var out []BidTraceJSON
		for _, tr := range all {
			if tr.Slot == slot {
				out = append(out, EncodeBidTrace(tr))
			}
		}
		if out == nil {
			out = []BidTraceJSON{}
		}
		writeJSON(w, out)
		return
	}
	limit, cursor, err := pageParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	all := append([]pbs.BidTrace(nil), s.relay.Received()...)
	s.mu.Unlock()
	writeJSON(w, pageTraces(all, limit, cursor))
}

// pageParams parses limit and cursor query parameters.
func pageParams(r *http.Request) (limit int, cursor uint64, err error) {
	q := r.URL.Query()
	limit = defaultPageLimit
	if ls := q.Get(queryParamLimit); ls != "" {
		limit, err = strconv.Atoi(ls)
		if err != nil || limit <= 0 {
			return 0, 0, fmt.Errorf("bad limit %q", ls)
		}
		if limit > maxPageLimit {
			limit = maxPageLimit
		}
	}
	cursor = ^uint64(0)
	if cs := q.Get(queryParamCursor); cs != "" {
		cursor, err = strconv.ParseUint(cs, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad cursor %q", cs)
		}
	}
	return limit, cursor, nil
}

// pageTraces returns up to limit traces with slot <= cursor, sorted by slot
// descending (the spec's pagination contract).
func pageTraces(traces []pbs.BidTrace, limit int, cursor uint64) []BidTraceJSON {
	sorted := append([]pbs.BidTrace(nil), traces...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Slot > sorted[j].Slot })
	out := []BidTraceJSON{}
	for _, tr := range sorted {
		if tr.Slot > cursor {
			continue
		}
		out = append(out, EncodeBidTrace(tr))
		if len(out) >= limit {
			break
		}
	}
	return out
}
