// Crawl checkpoint persistence: a CrawlState can be saved to disk after
// every crawl attempt and loaded back, so a crawler killed mid-harvest —
// process death, not just a dropped connection — resumes from its last
// page instead of re-crawling the relay from the top. Files land via
// atomic temp + rename, so a crash mid-save leaves the previous good
// checkpoint in place.
package relayapi

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"github.com/ethpbs/pbslab/internal/atomicio"
)

// Save writes the crawl state to path atomically. Only exported fields are
// persisted; the dedup index is rebuilt from Traces on load.
func (st *CrawlState) Save(path string) error {
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("relayapi: encode crawl state: %w", err)
	}
	if err := atomicio.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("relayapi: save crawl state: %w", err)
	}
	return nil
}

// LoadCrawlState reads a checkpoint written by Save and rebuilds the dedup
// index, ready for ResumeDelivered/ResumeReceived to continue from it.
func LoadCrawlState(path string) (*CrawlState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	st := &CrawlState{}
	if err := json.Unmarshal(data, st); err != nil {
		return nil, fmt.Errorf("relayapi: decode crawl state %s: %w", path, err)
	}
	st.ensureSeen()
	return st, nil
}

// checkpointFileName maps a relay name and endpoint path to a stable file
// name: non-portable characters collapse to '-'.
func checkpointFileName(relay, path string) string {
	endpoint := "delivered"
	if path == PathReceived {
		endpoint = "received"
	}
	sanitized := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, relay)
	return sanitized + "." + endpoint + ".json"
}
