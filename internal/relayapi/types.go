// Package relayapi implements the Flashbots relay API over HTTP: the
// builder submission endpoint, the proposer (MEV-Boost) header/payload
// endpoints, and the data API the paper's relay crawler harvested
// (proposer_payload_delivered, builder_blocks_received). It ships both the
// server (wrapping internal/relay) and the client/crawler.
//
// Wire format follows the spec's conventions: JSON with 0x-prefixed hex for
// hashes/addresses/pubkeys and decimal strings for numbers.
package relayapi

import (
	"fmt"
	"strconv"

	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/pbs"
	"github.com/ethpbs/pbslab/internal/types"
	"github.com/ethpbs/pbslab/internal/u256"
)

// BidTraceJSON is the wire form of pbs.BidTrace.
type BidTraceJSON struct {
	Slot                 string `json:"slot"`
	ParentHash           string `json:"parent_hash"`
	BlockHash            string `json:"block_hash"`
	BuilderPubkey        string `json:"builder_pubkey"`
	ProposerPubkey       string `json:"proposer_pubkey"`
	ProposerFeeRecipient string `json:"proposer_fee_recipient"`
	GasLimit             string `json:"gas_limit"`
	GasUsed              string `json:"gas_used"`
	Value                string `json:"value"`
	NumTx                string `json:"num_tx"`
	BlockNumber          string `json:"block_number"`
}

// EncodeBidTrace converts a trace to its wire form.
func EncodeBidTrace(t pbs.BidTrace) BidTraceJSON {
	return BidTraceJSON{
		Slot:                 strconv.FormatUint(t.Slot, 10),
		ParentHash:           t.ParentHash.Hex(),
		BlockHash:            t.BlockHash.Hex(),
		BuilderPubkey:        t.BuilderPubkey.Hex(),
		ProposerPubkey:       t.ProposerPubkey.Hex(),
		ProposerFeeRecipient: t.ProposerFeeRecipient.Hex(),
		GasLimit:             strconv.FormatUint(t.GasLimit, 10),
		GasUsed:              strconv.FormatUint(t.GasUsed, 10),
		Value:                t.Value.String(),
		NumTx:                strconv.Itoa(t.NumTx),
		BlockNumber:          strconv.FormatUint(t.BlockNumber, 10),
	}
}

// DecodeBidTrace parses the wire form.
func DecodeBidTrace(j BidTraceJSON) (pbs.BidTrace, error) {
	var t pbs.BidTrace
	var err error
	if t.Slot, err = strconv.ParseUint(j.Slot, 10, 64); err != nil {
		return t, fmt.Errorf("relayapi: slot: %w", err)
	}
	if t.ParentHash, err = crypto.ParseHash(j.ParentHash); err != nil {
		return t, fmt.Errorf("relayapi: parent_hash: %w", err)
	}
	if t.BlockHash, err = crypto.ParseHash(j.BlockHash); err != nil {
		return t, fmt.Errorf("relayapi: block_hash: %w", err)
	}
	if t.BuilderPubkey, err = crypto.ParsePubKey(j.BuilderPubkey); err != nil {
		return t, fmt.Errorf("relayapi: builder_pubkey: %w", err)
	}
	if t.ProposerPubkey, err = crypto.ParsePubKey(j.ProposerPubkey); err != nil {
		return t, fmt.Errorf("relayapi: proposer_pubkey: %w", err)
	}
	if t.ProposerFeeRecipient, err = crypto.ParseAddress(j.ProposerFeeRecipient); err != nil {
		return t, fmt.Errorf("relayapi: proposer_fee_recipient: %w", err)
	}
	if t.GasLimit, err = strconv.ParseUint(j.GasLimit, 10, 64); err != nil {
		return t, fmt.Errorf("relayapi: gas_limit: %w", err)
	}
	if t.GasUsed, err = strconv.ParseUint(j.GasUsed, 10, 64); err != nil {
		return t, fmt.Errorf("relayapi: gas_used: %w", err)
	}
	if t.Value, err = u256.FromDecimal(j.Value); err != nil {
		return t, fmt.Errorf("relayapi: value: %w", err)
	}
	if t.NumTx, err = strconv.Atoi(j.NumTx); err != nil {
		return t, fmt.Errorf("relayapi: num_tx: %w", err)
	}
	if t.BlockNumber, err = strconv.ParseUint(j.BlockNumber, 10, 64); err != nil {
		return t, fmt.Errorf("relayapi: block_number: %w", err)
	}
	return t, nil
}

// TransactionJSON is the wire form of a transaction.
type TransactionJSON struct {
	Nonce  string `json:"nonce"`
	From   string `json:"from"`
	To     string `json:"to"`
	Value  string `json:"value"`
	Gas    string `json:"gas"`
	MaxFee string `json:"max_fee_per_gas"`
	MaxTip string `json:"max_priority_fee_per_gas"`
	Input  string `json:"input"`
}

// EncodeTransaction converts a transaction to wire form.
func EncodeTransaction(tx *types.Transaction) TransactionJSON {
	return TransactionJSON{
		Nonce:  strconv.FormatUint(tx.Nonce, 10),
		From:   tx.From.Hex(),
		To:     tx.To.Hex(),
		Value:  tx.Value.String(),
		Gas:    strconv.FormatUint(tx.Gas, 10),
		MaxFee: tx.MaxFee.String(),
		MaxTip: tx.MaxTip.String(),
		Input:  "0x" + hexBytes(tx.Data),
	}
}

// DecodeTransaction parses the wire form, rebuilding the hashed object.
func DecodeTransaction(j TransactionJSON) (*types.Transaction, error) {
	nonce, err := strconv.ParseUint(j.Nonce, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("relayapi: nonce: %w", err)
	}
	from, err := crypto.ParseAddress(j.From)
	if err != nil {
		return nil, fmt.Errorf("relayapi: from: %w", err)
	}
	to, err := crypto.ParseAddress(j.To)
	if err != nil {
		return nil, fmt.Errorf("relayapi: to: %w", err)
	}
	value, err := u256.FromDecimal(j.Value)
	if err != nil {
		return nil, fmt.Errorf("relayapi: value: %w", err)
	}
	gas, err := strconv.ParseUint(j.Gas, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("relayapi: gas: %w", err)
	}
	maxFee, err := u256.FromDecimal(j.MaxFee)
	if err != nil {
		return nil, fmt.Errorf("relayapi: max_fee: %w", err)
	}
	maxTip, err := u256.FromDecimal(j.MaxTip)
	if err != nil {
		return nil, fmt.Errorf("relayapi: max_tip: %w", err)
	}
	data, err := parseHexBytes(j.Input)
	if err != nil {
		return nil, fmt.Errorf("relayapi: input: %w", err)
	}
	return types.NewTransaction(nonce, from, to, value, gas, maxFee, maxTip, data), nil
}

// HeaderJSON is the wire form of a block header.
type HeaderJSON struct {
	ParentHash   string `json:"parent_hash"`
	Number       string `json:"block_number"`
	Slot         string `json:"slot"`
	Timestamp    string `json:"timestamp"`
	FeeRecipient string `json:"fee_recipient"`
	GasLimit     string `json:"gas_limit"`
	GasUsed      string `json:"gas_used"`
	BaseFee      string `json:"base_fee_per_gas"`
	TxRoot       string `json:"transactions_root"`
	Extra        string `json:"extra_data"`
}

// EncodeHeader converts a header to wire form.
func EncodeHeader(h *types.Header) HeaderJSON {
	return HeaderJSON{
		ParentHash:   h.ParentHash.Hex(),
		Number:       strconv.FormatUint(h.Number, 10),
		Slot:         strconv.FormatUint(h.Slot, 10),
		Timestamp:    strconv.FormatUint(h.Timestamp, 10),
		FeeRecipient: h.FeeRecipient.Hex(),
		GasLimit:     strconv.FormatUint(h.GasLimit, 10),
		GasUsed:      strconv.FormatUint(h.GasUsed, 10),
		BaseFee:      h.BaseFee.String(),
		TxRoot:       h.TxRoot.Hex(),
		Extra:        "0x" + hexBytes(h.Extra),
	}
}

// DecodeHeader parses the wire form.
func DecodeHeader(j HeaderJSON) (*types.Header, error) {
	h := &types.Header{}
	var err error
	if h.ParentHash, err = crypto.ParseHash(j.ParentHash); err != nil {
		return nil, fmt.Errorf("relayapi: parent_hash: %w", err)
	}
	if h.Number, err = strconv.ParseUint(j.Number, 10, 64); err != nil {
		return nil, fmt.Errorf("relayapi: block_number: %w", err)
	}
	if h.Slot, err = strconv.ParseUint(j.Slot, 10, 64); err != nil {
		return nil, fmt.Errorf("relayapi: slot: %w", err)
	}
	if h.Timestamp, err = strconv.ParseUint(j.Timestamp, 10, 64); err != nil {
		return nil, fmt.Errorf("relayapi: timestamp: %w", err)
	}
	if h.FeeRecipient, err = crypto.ParseAddress(j.FeeRecipient); err != nil {
		return nil, fmt.Errorf("relayapi: fee_recipient: %w", err)
	}
	if h.GasLimit, err = strconv.ParseUint(j.GasLimit, 10, 64); err != nil {
		return nil, fmt.Errorf("relayapi: gas_limit: %w", err)
	}
	if h.GasUsed, err = strconv.ParseUint(j.GasUsed, 10, 64); err != nil {
		return nil, fmt.Errorf("relayapi: gas_used: %w", err)
	}
	if h.BaseFee, err = u256.FromDecimal(j.BaseFee); err != nil {
		return nil, fmt.Errorf("relayapi: base_fee: %w", err)
	}
	if h.TxRoot, err = crypto.ParseHash(j.TxRoot); err != nil {
		return nil, fmt.Errorf("relayapi: transactions_root: %w", err)
	}
	if h.Extra, err = parseHexBytes(j.Extra); err != nil {
		return nil, fmt.Errorf("relayapi: extra_data: %w", err)
	}
	return h, nil
}

// SubmissionJSON is the wire form of a builder block submission.
type SubmissionJSON struct {
	Message      BidTraceJSON      `json:"message"`
	Header       HeaderJSON        `json:"execution_payload_header"`
	Transactions []TransactionJSON `json:"transactions"`
	Signature    string            `json:"signature"`
}

// EncodeSubmission converts a submission to wire form.
func EncodeSubmission(sub *pbs.Submission) SubmissionJSON {
	out := SubmissionJSON{
		Message:   EncodeBidTrace(sub.Trace),
		Header:    EncodeHeader(sub.Block.Header),
		Signature: "0x" + hexBytes(sub.Signature[:]),
	}
	for _, tx := range sub.Block.Txs {
		out.Transactions = append(out.Transactions, EncodeTransaction(tx))
	}
	return out
}

// DecodeSubmission parses the wire form and reconstructs the block.
func DecodeSubmission(j SubmissionJSON) (*pbs.Submission, error) {
	trace, err := DecodeBidTrace(j.Message)
	if err != nil {
		return nil, err
	}
	header, err := DecodeHeader(j.Header)
	if err != nil {
		return nil, err
	}
	txs := make([]*types.Transaction, 0, len(j.Transactions))
	for i, tj := range j.Transactions {
		tx, err := DecodeTransaction(tj)
		if err != nil {
			return nil, fmt.Errorf("relayapi: tx %d: %w", i, err)
		}
		txs = append(txs, tx)
	}
	sigBytes, err := parseHexBytes(j.Signature)
	if err != nil || len(sigBytes) != crypto.SignatureSize {
		return nil, fmt.Errorf("relayapi: signature: bad length or hex")
	}
	var sig types.Signature
	copy(sig[:], sigBytes)
	// NewBlock recomputes the tx root; a tampered root surfaces as a
	// different block hash and fails signature/validation downstream.
	block := types.NewBlock(header, txs)
	return &pbs.Submission{Trace: trace, Block: block, Signature: sig}, nil
}

// BidJSON is the wire form of a blinded builder bid (getHeader response).
type BidJSON struct {
	Relay         string     `json:"relay"`
	Slot          string     `json:"slot"`
	Header        HeaderJSON `json:"header"`
	Value         string     `json:"value"`
	BlockHash     string     `json:"block_hash"`
	BuilderPubkey string     `json:"builder_pubkey"`
}

// EncodeBid converts a bid to wire form.
func EncodeBid(b *pbs.Bid) BidJSON {
	return BidJSON{
		Relay:         b.Relay,
		Slot:          strconv.FormatUint(b.Slot, 10),
		Header:        EncodeHeader(b.Header),
		Value:         b.Value.String(),
		BlockHash:     b.BlockHash.Hex(),
		BuilderPubkey: b.BuilderPubkey.Hex(),
	}
}

// DecodeBid parses the wire form.
func DecodeBid(j BidJSON) (*pbs.Bid, error) {
	slot, err := strconv.ParseUint(j.Slot, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("relayapi: slot: %w", err)
	}
	header, err := DecodeHeader(j.Header)
	if err != nil {
		return nil, err
	}
	value, err := u256.FromDecimal(j.Value)
	if err != nil {
		return nil, fmt.Errorf("relayapi: value: %w", err)
	}
	blockHash, err := crypto.ParseHash(j.BlockHash)
	if err != nil {
		return nil, fmt.Errorf("relayapi: block_hash: %w", err)
	}
	pub, err := crypto.ParsePubKey(j.BuilderPubkey)
	if err != nil {
		return nil, fmt.Errorf("relayapi: builder_pubkey: %w", err)
	}
	return &pbs.Bid{
		Relay: j.Relay, Slot: slot, Header: header,
		Value: value, BlockHash: blockHash, BuilderPubkey: pub,
	}, nil
}

// SignedBlindedHeaderJSON is the wire form of the proposer's commitment.
type SignedBlindedHeaderJSON struct {
	Slot           string `json:"slot"`
	BlockHash      string `json:"block_hash"`
	ProposerPubkey string `json:"proposer_pubkey"`
	Signature      string `json:"signature"`
}

// EncodeSignedBlindedHeader converts a commitment to wire form.
func EncodeSignedBlindedHeader(h *pbs.SignedBlindedHeader) SignedBlindedHeaderJSON {
	return SignedBlindedHeaderJSON{
		Slot:           strconv.FormatUint(h.Slot, 10),
		BlockHash:      h.BlockHash.Hex(),
		ProposerPubkey: h.ProposerPubkey.Hex(),
		Signature:      "0x" + hexBytes(h.Signature[:]),
	}
}

// DecodeSignedBlindedHeader parses the wire form.
func DecodeSignedBlindedHeader(j SignedBlindedHeaderJSON) (*pbs.SignedBlindedHeader, error) {
	slot, err := strconv.ParseUint(j.Slot, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("relayapi: slot: %w", err)
	}
	blockHash, err := crypto.ParseHash(j.BlockHash)
	if err != nil {
		return nil, fmt.Errorf("relayapi: block_hash: %w", err)
	}
	pub, err := crypto.ParsePubKey(j.ProposerPubkey)
	if err != nil {
		return nil, fmt.Errorf("relayapi: proposer_pubkey: %w", err)
	}
	sigBytes, err := parseHexBytes(j.Signature)
	if err != nil || len(sigBytes) != crypto.SignatureSize {
		return nil, fmt.Errorf("relayapi: signature: bad length or hex")
	}
	var sig types.Signature
	copy(sig[:], sigBytes)
	return &pbs.SignedBlindedHeader{
		Slot: slot, BlockHash: blockHash, ProposerPubkey: pub, Signature: sig,
	}, nil
}

const hexDigits = "0123456789abcdef"

func hexBytes(b []byte) string {
	out := make([]byte, 2*len(b))
	for i, c := range b {
		out[2*i] = hexDigits[c>>4]
		out[2*i+1] = hexDigits[c&0x0f]
	}
	return string(out)
}

func parseHexBytes(s string) ([]byte, error) {
	if len(s) >= 2 && (s[:2] == "0x" || s[:2] == "0X") {
		s = s[2:]
	}
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("relayapi: odd hex length %d", len(s))
	}
	out := make([]byte, len(s)/2)
	for i := 0; i < len(out); i++ {
		hi, ok1 := hexVal(s[2*i])
		lo, ok2 := hexVal(s[2*i+1])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("relayapi: invalid hex digit")
		}
		out[i] = hi<<4 | lo
	}
	return out, nil
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
