package relayapi

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/pbs"
	"github.com/ethpbs/pbslab/internal/types"
)

// syntheticTraces builds n distinct bid traces across n slots.
func syntheticTraces(n int) []pbs.BidTrace {
	out := make([]pbs.BidTrace, n)
	for i := 0; i < n; i++ {
		out[i] = pbs.BidTrace{
			Slot:      uint64(1000 + i),
			BlockHash: crypto.Keccak256([]byte("trace/" + strconv.Itoa(i))),
			Value:     types.Ether(float64(i) + 1),
		}
	}
	return out
}

// traceServer serves paginated bidtraces on both data endpoints, letting
// tests script per-request faults. fault returns the action for the 1-based
// request ordinal: 0 = serve normally, -1 = drop the connection, otherwise
// an HTTP status to answer with.
type traceServer struct {
	traces []pbs.BidTrace
	fault  func(req int) int
	// retryAfter is attached to 429 responses.
	retryAfter string

	mu   sync.Mutex
	reqs int
	srv  *httptest.Server
}

func newTraceServer(t *testing.T, traces []pbs.BidTrace, fault func(req int) int) *traceServer {
	t.Helper()
	ts := &traceServer{traces: traces, fault: fault}
	ts.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ts.mu.Lock()
		ts.reqs++
		req := ts.reqs
		ts.mu.Unlock()
		if ts.fault != nil {
			switch act := ts.fault(req); {
			case act == -1:
				panic(http.ErrAbortHandler)
			case act != 0:
				if act == http.StatusTooManyRequests && ts.retryAfter != "" {
					w.Header().Set("Retry-After", ts.retryAfter)
				}
				http.Error(w, http.StatusText(act), act)
				return
			}
		}
		limit, cursor, err := pageParams(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, pageTraces(ts.traces, limit, cursor))
	}))
	t.Cleanup(ts.srv.Close)
	return ts
}

func (ts *traceServer) requests() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.reqs
}

// fastClient builds a client whose backoff sleeps are recorded, not slept.
// Keep-alives are off so severed connections surface as errors instead of
// being absorbed by the transport's transparent retry on reused conns.
func fastClient(name, url string, sleeps *[]time.Duration) *Client {
	c := NewClient(name, url)
	c.HTTP = &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	c.Sleep = func(d time.Duration) {
		if sleeps != nil {
			*sleeps = append(*sleeps, d)
		}
	}
	return c
}

func TestRetryOn5xx(t *testing.T) {
	ts := newTraceServer(t, syntheticTraces(4), func(req int) int {
		if req <= 2 {
			return http.StatusServiceUnavailable
		}
		return 0
	})
	var sleeps []time.Duration
	c := fastClient("flaky", ts.srv.URL, &sleeps)

	got, err := c.DeliveredPage(bg, ^uint64(0), 10)
	if err != nil {
		t.Fatalf("DeliveredPage: %v", err)
	}
	if len(got) != 4 {
		t.Errorf("traces = %d, want 4", len(got))
	}
	if c.Retries() != 2 {
		t.Errorf("retries = %d, want 2", c.Retries())
	}
	if len(sleeps) != 2 {
		t.Fatalf("backoff sleeps = %d, want 2", len(sleeps))
	}
	// Exponential shape with jitter in [0.5, 1): the second wait's range
	// floor is the first wait's ceiling.
	if sleeps[0] < 25*time.Millisecond || sleeps[0] >= 50*time.Millisecond {
		t.Errorf("first backoff %v outside [25ms, 50ms)", sleeps[0])
	}
	if sleeps[1] < 50*time.Millisecond || sleeps[1] >= 100*time.Millisecond {
		t.Errorf("second backoff %v outside [50ms, 100ms)", sleeps[1])
	}
}

func TestRetryOn429HonoursRetryAfter(t *testing.T) {
	ts := newTraceServer(t, syntheticTraces(2), func(req int) int {
		if req == 1 {
			return http.StatusTooManyRequests
		}
		return 0
	})
	ts.retryAfter = "2"
	var sleeps []time.Duration
	c := fastClient("limited", ts.srv.URL, &sleeps)

	if _, err := c.DeliveredPage(bg, ^uint64(0), 10); err != nil {
		t.Fatalf("DeliveredPage: %v", err)
	}
	if c.Retries() != 1 {
		t.Errorf("retries = %d, want 1", c.Retries())
	}
	if len(sleeps) != 1 || sleeps[0] < 2*time.Second {
		t.Errorf("sleeps = %v, want one wait >= Retry-After (2s)", sleeps)
	}
}

func TestRetryExhausted(t *testing.T) {
	ts := newTraceServer(t, nil, func(req int) int { return http.StatusServiceUnavailable })
	c := fastClient("dead", ts.srv.URL, nil)
	c.Retry.MaxAttempts = 3

	_, err := c.DeliveredPage(bg, ^uint64(0), 10)
	if err == nil {
		t.Fatal("permanently failing relay should error")
	}
	if ts.requests() != 3 {
		t.Errorf("requests = %d, want 3 attempts", ts.requests())
	}
}

func TestNonJSONContentTypeRejected(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		_, _ = w.Write([]byte("<html>not a data api</html>"))
	}))
	defer srv.Close()
	c := fastClient("html", srv.URL, nil)

	_, err := c.DeliveredPage(bg, ^uint64(0), 10)
	if !errors.Is(err, ErrBadContentType) {
		t.Fatalf("err = %v, want ErrBadContentType", err)
	}
	if c.Retries() != 0 {
		t.Error("content-type rejection is final, not retryable")
	}
}

func TestBodyLimitStopsHugeResponses(t *testing.T) {
	ts := newTraceServer(t, syntheticTraces(50), nil)
	c := fastClient("huge", ts.srv.URL, nil)
	c.MaxBodyBytes = 64 // far below one page of traces
	c.Retry.MaxAttempts = 2

	if _, err := c.DeliveredPage(bg, ^uint64(0), 50); err == nil {
		t.Fatal("oversized body should fail decoding under the limit")
	}
	if ts.requests() != 2 {
		t.Errorf("requests = %d, want the limit hit to be retried once", ts.requests())
	}
}

func TestCrawlResumeAfterDrop(t *testing.T) {
	traces := syntheticTraces(10)
	// The third page request has its connection severed.
	ts := newTraceServer(t, traces, func(req int) int {
		if req == 3 {
			return -1
		}
		return 0
	})
	c := fastClient("dropper", ts.srv.URL, nil)
	c.Retry.MaxAttempts = 1 // surface the drop instead of absorbing it

	st := NewCrawlState()
	err := c.ResumeDelivered(bg, 3, st)
	if err == nil {
		t.Fatal("dropped connection should surface")
	}
	if st.Done || len(st.Traces) == 0 {
		t.Fatalf("checkpoint should hold a partial harvest, got %d traces done=%v", len(st.Traces), st.Done)
	}
	partial := len(st.Traces)

	// Resuming completes the crawl without refetching from the top.
	if err := c.ResumeDelivered(bg, 3, st); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !st.Done || len(st.Traces) != len(traces) {
		t.Fatalf("resumed harvest = %d traces, want %d", len(st.Traces), len(traces))
	}
	if partial >= len(traces) {
		t.Error("first pass should have been partial")
	}
	seen := map[uint64]bool{}
	for _, tr := range st.Traces {
		if seen[tr.Slot] {
			t.Fatal("duplicate slot after resume")
		}
		seen[tr.Slot] = true
	}
}

func TestCrawlerResumesFlakyRelay(t *testing.T) {
	traces := syntheticTraces(9)
	ts := newTraceServer(t, traces, func(req int) int {
		if req == 2 || req == 7 {
			return -1
		}
		return 0
	})
	c := fastClient("flaky", ts.srv.URL, nil)
	c.Retry.MaxAttempts = 1

	cr := &Crawler{Clients: []*Client{c}, PageSize: 3, Resumes: 3}
	harvests := cr.Run(bg)
	h := harvests[0]
	if h.Err != nil || h.Partial {
		t.Fatalf("harvest should complete after resumes: %v", h.Err)
	}
	if len(h.Delivered) != len(traces) || len(h.Received) != len(traces) {
		t.Errorf("harvest = %d/%d, want %d/%d", len(h.Delivered), len(h.Received), len(traces), len(traces))
	}
	if h.Resumes == 0 {
		t.Error("resume counter should be nonzero")
	}
}

func TestCrawlStallWatchdog(t *testing.T) {
	// A misbehaving relay that re-serves the same full page whatever the
	// cursor says: without the watchdog this loops forever.
	page := syntheticTraces(3)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, pageTraces(page, 3, ^uint64(0)))
	}))
	defer srv.Close()
	c := fastClient("stuck", srv.URL, nil)

	done := make(chan error, 1)
	go func() {
		_, err := c.CrawlDelivered(bg, 3)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCrawlStalled) {
			t.Fatalf("err = %v, want ErrCrawlStalled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("crawl did not terminate: unbounded loop")
	}
}

func TestCrawlPageCap(t *testing.T) {
	ts := newTraceServer(t, syntheticTraces(40), nil)
	c := fastClient("capped", ts.srv.URL, nil)
	c.MaxPages = 2

	_, err := c.CrawlDelivered(bg, 3)
	if !errors.Is(err, ErrTooManyPages) {
		t.Fatalf("err = %v, want ErrTooManyPages", err)
	}
}

func TestCrawlerPartialHarvestOnPersistentFailure(t *testing.T) {
	traces := syntheticTraces(10)
	// Everything from the third request on is severed: retries and resumes
	// are exhausted and the harvest comes back partial.
	ts := newTraceServer(t, traces, func(req int) int {
		if req >= 3 {
			return -1
		}
		return 0
	})
	c := fastClient("dying", ts.srv.URL, nil)
	c.Retry.MaxAttempts = 2

	cr := &Crawler{Clients: []*Client{c}, PageSize: 3, Resumes: 2}
	h := cr.Run(bg)[0]
	if h.Err == nil || !h.Partial {
		t.Fatal("persistently failing relay should yield a partial harvest with error detail")
	}
	if len(h.Delivered) == 0 {
		t.Error("partial harvest should keep what was fetched before the failure")
	}
	if h.Retries == 0 || h.Resumes == 0 {
		t.Errorf("retries = %d resumes = %d, want both nonzero", h.Retries, h.Resumes)
	}
}
