// Package epbs prototypes the protocol roadmap the paper's concluding
// discussion points at (Section 8): enshrined Proposer-Builder Separation,
// where the consensus protocol itself — not a trusted relay — escrows the
// builder's bid and enforces payment to the proposer.
//
// The design follows the two-slot / PEPC sketches the paper cites
// (Buterin's "Two-slot proposer/builder separation", Monnot's PEPC): a
// builder posts a deposit, commits to (blockHash, bid) with a signature,
// the proposer selects and signs the best commitment, and settlement pays
// the bid out of the deposit no matter what the revealed block actually
// contains. A builder can still lie about its block's value — but the lie
// costs the builder, not the proposer.
//
// The paper's caveat is implemented faithfully too: the proposal "is
// restricted to ensuring that the value is delivered but does not address
// the other aspects" — nothing here filters transactions, so censorship
// properties are untouched, as the extension benchmark demonstrates.
package epbs

import (
	"errors"
	"fmt"
	"sort"

	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/rlp"
	"github.com/ethpbs/pbslab/internal/types"
	"github.com/ethpbs/pbslab/internal/u256"
)

// Errors.
var (
	ErrNoDeposit        = errors.New("epbs: builder has no deposit")
	ErrBidExceedsBond   = errors.New("epbs: bid exceeds remaining deposit")
	ErrBadSignature     = errors.New("epbs: bad commitment signature")
	ErrNoCommitments    = errors.New("epbs: no commitments for slot")
	ErrUnknownSelection = errors.New("epbs: selected commitment not found")
	ErrWrongBlock       = errors.New("epbs: revealed block does not match commitment")
	ErrAlreadySettled   = errors.New("epbs: slot already settled")
)

// Commitment is a builder's protocol-level bid: a hash binding the payload
// plus the amount the protocol will transfer on inclusion.
type Commitment struct {
	Slot          uint64
	BlockHash     types.Hash
	BuilderPubkey types.PubKey
	Bid           types.Wei
	Signature     types.Signature
}

// signingBytes is the canonical byte encoding of the commitment.
func (c *Commitment) signingBytes() []byte {
	bid := c.Bid.Bytes32()
	return rlp.Encode(rlp.List(
		rlp.Text("epbs-commitment"),
		rlp.Uint(c.Slot),
		rlp.String(c.BlockHash[:]),
		rlp.String(c.BuilderPubkey[:]),
		rlp.String(bid[:]),
	))
}

// Sign produces the builder's commitment signature.
func (c *Commitment) Sign(key *crypto.Key) {
	c.Signature = key.Sign(c.signingBytes())
}

// Settlement is the protocol-enforced outcome of one slot.
type Settlement struct {
	Slot          uint64
	BuilderPubkey types.PubKey
	// Promised is the committed bid.
	Promised types.Wei
	// Paid is what the proposer actually received — always equal to
	// Promised up to the deposit bound, enforced by the protocol.
	Paid types.Wei
	// Slashed reports whether the builder failed to reveal a matching
	// payload and lost its bid from the deposit anyway.
	Slashed bool
}

// Market is the enshrined auction state: builder deposits plus per-slot
// commitments. It is the trust-free replacement for the relay layer.
type Market struct {
	deposits    map[types.PubKey]types.Wei
	verifyKeys  map[types.PubKey]crypto.Hash
	commitments map[uint64][]*Commitment
	settled     map[uint64]bool
}

// NewMarket returns an empty enshrined-PBS market.
func NewMarket() *Market {
	return &Market{
		deposits:    map[types.PubKey]types.Wei{},
		verifyKeys:  map[types.PubKey]crypto.Hash{},
		commitments: map[uint64][]*Commitment{},
		settled:     map[uint64]bool{},
	}
}

// Deposit bonds a builder. The verification key accompanies the deposit,
// as validator registrations do on the beacon chain.
func (m *Market) Deposit(pub types.PubKey, vk crypto.Hash, amount types.Wei) {
	m.deposits[pub] = m.deposits[pub].Add(amount)
	m.verifyKeys[pub] = vk
}

// DepositOf returns a builder's remaining bond.
func (m *Market) DepositOf(pub types.PubKey) types.Wei {
	return m.deposits[pub]
}

// Commit records a builder's bid for a slot. The protocol rejects bids the
// deposit cannot cover — the property that makes promises credible.
func (m *Market) Commit(c *Commitment) error {
	vk, ok := m.verifyKeys[c.BuilderPubkey]
	if !ok {
		return ErrNoDeposit
	}
	if !crypto.Verify(vk, c.signingBytes(), c.Signature) {
		return ErrBadSignature
	}
	if m.deposits[c.BuilderPubkey].Lt(c.Bid) {
		return fmt.Errorf("%w: bid %s, deposit %s", ErrBidExceedsBond,
			c.Bid, m.deposits[c.BuilderPubkey])
	}
	m.commitments[c.Slot] = append(m.commitments[c.Slot], c)
	return nil
}

// Best returns the highest-bid commitment for a slot (ties broken by block
// hash for determinism), which is all a proposer needs to select — no
// blinded-header round trip, no relay.
func (m *Market) Best(slot uint64) (*Commitment, error) {
	cs := m.commitments[slot]
	if len(cs) == 0 {
		return nil, ErrNoCommitments
	}
	best := cs[0]
	for _, c := range cs[1:] {
		switch c.Bid.Cmp(best.Bid) {
		case 1:
			best = c
		case 0:
			if c.BlockHash.Hex() < best.BlockHash.Hex() {
				best = c
			}
		}
	}
	return best, nil
}

// Settle finalizes a slot after the proposer selected a commitment and the
// builder revealed (or failed to reveal) the payload. The bid moves from
// the deposit to the proposer unconditionally: a matching reveal pays for
// the block, a missing or mismatched reveal is slashed for the same amount,
// so lying about value can never shortchange the proposer.
func (m *Market) Settle(selected *Commitment, revealed *types.Block) (*Settlement, error) {
	if m.settled[selected.Slot] {
		return nil, ErrAlreadySettled
	}
	found := false
	for _, c := range m.commitments[selected.Slot] {
		if c == selected {
			found = true
			break
		}
	}
	if !found {
		return nil, ErrUnknownSelection
	}

	pay := selected.Bid
	if m.deposits[selected.BuilderPubkey].Lt(pay) {
		// Cannot happen through Commit's check, but the protocol clamps
		// defensively: deposits are the hard bound on promises.
		pay = m.deposits[selected.BuilderPubkey]
	}
	m.deposits[selected.BuilderPubkey] = m.deposits[selected.BuilderPubkey].SatSub(pay)
	m.settled[selected.Slot] = true

	s := &Settlement{
		Slot:          selected.Slot,
		BuilderPubkey: selected.BuilderPubkey,
		Promised:      selected.Bid,
		Paid:          pay,
	}
	if revealed == nil || revealed.Hash() != selected.BlockHash {
		s.Slashed = true
	}
	return s, nil
}

// Audit mirrors the paper's Table 4 on a set of settlements: the share of
// promised value delivered. Under enshrined PBS this is 1.0 by
// construction whenever deposits cover bids.
func Audit(settlements []*Settlement) (delivered, promised types.Wei, share float64) {
	delivered, promised = u256.Zero, u256.Zero
	for _, s := range settlements {
		delivered = delivered.Add(s.Paid)
		promised = promised.Add(s.Promised)
	}
	if promised.IsZero() {
		return delivered, promised, 1
	}
	return delivered, promised, types.ToEther(delivered) / types.ToEther(promised)
}

// Commitments returns a slot's bids sorted by value descending; for
// inspection and tests.
func (m *Market) Commitments(slot uint64) []*Commitment {
	out := append([]*Commitment(nil), m.commitments[slot]...)
	sort.Slice(out, func(i, j int) bool { return out[i].Bid.Gt(out[j].Bid) })
	return out
}
