package epbs

import (
	"errors"
	"testing"

	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/types"
)

func newBuilder(t *testing.T, m *Market, seed string, depositETH float64) *crypto.Key {
	t.Helper()
	key := crypto.NewKey([]byte(seed))
	var pub types.PubKey = key.Pub()
	m.Deposit(pub, key.VerificationKey(), types.Ether(depositETH))
	return key
}

func commit(t *testing.T, m *Market, key *crypto.Key, slot uint64, hash types.Hash, bidETH float64) *Commitment {
	t.Helper()
	c := &Commitment{
		Slot: slot, BlockHash: hash,
		BuilderPubkey: key.Pub(), Bid: types.Ether(bidETH),
	}
	c.Sign(key)
	if err := m.Commit(c); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return c
}

func blockWithHash(seed string) *types.Block {
	header := &types.Header{Number: 1, Extra: []byte(seed)}
	return types.NewBlock(header, nil)
}

func TestHonestFlow(t *testing.T) {
	m := NewMarket()
	key := newBuilder(t, m, "builder-a", 10)
	blk := blockWithHash("payload")
	c := commit(t, m, key, 100, blk.Hash(), 0.5)

	best, err := m.Best(100)
	if err != nil || best != c {
		t.Fatalf("Best: %v", err)
	}
	s, err := m.Settle(best, blk)
	if err != nil {
		t.Fatal(err)
	}
	if s.Paid != s.Promised || s.Slashed {
		t.Errorf("settlement: %+v", s)
	}
	if got := m.DepositOf(key.Pub()); got != types.Ether(9.5) {
		t.Errorf("deposit after = %s", got)
	}
}

func TestLyingBuilderStillPays(t *testing.T) {
	// The Manifold/Eden failure mode: a builder claims value its block does
	// not carry. Under enshrined PBS, the protocol pays the proposer from
	// the deposit regardless — the proposer cannot be shortchanged.
	m := NewMarket()
	key := newBuilder(t, m, "liar", 10)
	blk := blockWithHash("worthless-block")
	c := commit(t, m, key, 100, blk.Hash(), 2.0) // claims 2 ETH of value

	s, err := m.Settle(c, blk)
	if err != nil {
		t.Fatal(err)
	}
	if s.Paid != types.Ether(2) {
		t.Errorf("proposer received %s, want the full promise", s.Paid)
	}
	_, _, share := Audit([]*Settlement{s})
	if share != 1 {
		t.Errorf("audit share = %f, want 1 (protocol-enforced)", share)
	}
}

func TestMissingRevealSlashes(t *testing.T) {
	m := NewMarket()
	key := newBuilder(t, m, "ghost", 5)
	blk := blockWithHash("never-revealed")
	c := commit(t, m, key, 7, blk.Hash(), 1.0)

	s, err := m.Settle(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Slashed || s.Paid != types.Ether(1) {
		t.Errorf("settlement: %+v", s)
	}
	// Wrong payload is slashed too.
	m2 := NewMarket()
	key2 := newBuilder(t, m2, "swapper", 5)
	c2 := commit(t, m2, key2, 7, blockWithHash("committed").Hash(), 1.0)
	s2, err := m2.Settle(c2, blockWithHash("other"))
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Slashed {
		t.Error("mismatched reveal not slashed")
	}
}

func TestBidBoundedByDeposit(t *testing.T) {
	m := NewMarket()
	key := newBuilder(t, m, "thin", 0.5)
	c := &Commitment{
		Slot: 1, BlockHash: crypto.Keccak256([]byte("x")),
		BuilderPubkey: key.Pub(), Bid: types.Ether(1),
	}
	c.Sign(key)
	if err := m.Commit(c); !errors.Is(err, ErrBidExceedsBond) {
		t.Errorf("err = %v", err)
	}
}

func TestNoDepositNoBids(t *testing.T) {
	m := NewMarket()
	key := crypto.NewKey([]byte("stranger"))
	c := &Commitment{Slot: 1, BuilderPubkey: key.Pub(), Bid: types.Ether(1)}
	c.Sign(key)
	if err := m.Commit(c); !errors.Is(err, ErrNoDeposit) {
		t.Errorf("err = %v", err)
	}
}

func TestTamperedCommitmentRejected(t *testing.T) {
	m := NewMarket()
	key := newBuilder(t, m, "tamper", 10)
	c := &Commitment{
		Slot: 1, BlockHash: crypto.Keccak256([]byte("x")),
		BuilderPubkey: key.Pub(), Bid: types.Ether(0.1),
	}
	c.Sign(key)
	c.Bid = types.Ether(0.2) // inflate after signing
	if err := m.Commit(c); !errors.Is(err, ErrBadSignature) {
		t.Errorf("err = %v", err)
	}
}

func TestBestSelectsHighestBid(t *testing.T) {
	m := NewMarket()
	a := newBuilder(t, m, "a", 10)
	b := newBuilder(t, m, "b", 10)
	commit(t, m, a, 5, crypto.Keccak256([]byte("a")), 0.3)
	big := commit(t, m, b, 5, crypto.Keccak256([]byte("b")), 0.7)
	best, err := m.Best(5)
	if err != nil || best != big {
		t.Fatalf("Best picked %v", best)
	}
	if _, err := m.Best(999); !errors.Is(err, ErrNoCommitments) {
		t.Errorf("empty slot: %v", err)
	}
	if got := m.Commitments(5); len(got) != 2 || got[0] != big {
		t.Error("Commitments not sorted")
	}
}

func TestDoubleSettleRejected(t *testing.T) {
	m := NewMarket()
	key := newBuilder(t, m, "once", 10)
	blk := blockWithHash("p")
	c := commit(t, m, key, 3, blk.Hash(), 0.1)
	if _, err := m.Settle(c, blk); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Settle(c, blk); !errors.Is(err, ErrAlreadySettled) {
		t.Errorf("err = %v", err)
	}
}

func TestSettleUnknownCommitment(t *testing.T) {
	m := NewMarket()
	key := newBuilder(t, m, "k", 10)
	stray := &Commitment{Slot: 9, BuilderPubkey: key.Pub(), Bid: types.Ether(0.1)}
	stray.Sign(key)
	if _, err := m.Settle(stray, nil); !errors.Is(err, ErrUnknownSelection) {
		t.Errorf("err = %v", err)
	}
}

func TestAuditAggregates(t *testing.T) {
	settlements := []*Settlement{
		{Promised: types.Ether(1), Paid: types.Ether(1)},
		{Promised: types.Ether(2), Paid: types.Ether(2)},
	}
	delivered, promised, share := Audit(settlements)
	if delivered != types.Ether(3) || promised != types.Ether(3) || share != 1 {
		t.Errorf("audit: %s %s %f", delivered, promised, share)
	}
	_, _, emptyShare := Audit(nil)
	if emptyShare != 1 {
		t.Errorf("empty audit share = %f", emptyShare)
	}
}
