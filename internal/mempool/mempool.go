// Package mempool implements the pending-transaction pool block producers
// draw from. It is nonce-aware (a sender's transactions only become
// executable in nonce order) and serves candidates ordered by effective tip,
// which is both what mainnet clients do and the paper's description of
// pre-MEV block building ("proposers have simply ordered transactions
// according to their gas price").
//
// Everything returned is deterministic: ties are broken by transaction hash,
// never by map iteration order.
package mempool

import (
	"errors"
	"fmt"
	"sort"

	"github.com/ethpbs/pbslab/internal/state"
	"github.com/ethpbs/pbslab/internal/types"
)

// Errors returned by Add.
var (
	ErrKnown        = errors.New("mempool: transaction already known")
	ErrNonceReplace = errors.New("mempool: same-nonce transaction with lower fee")
)

// Pool is the pending pool. Not safe for concurrent use.
type Pool struct {
	byHash   map[types.Hash]*types.Transaction
	bySender map[types.Address][]*types.Transaction // sorted by nonce
}

// New returns an empty pool.
func New() *Pool {
	return &Pool{
		byHash:   map[types.Hash]*types.Transaction{},
		bySender: map[types.Address][]*types.Transaction{},
	}
}

// Len returns the number of pending transactions.
func (p *Pool) Len() int { return len(p.byHash) }

// Has reports whether the pool holds the transaction.
func (p *Pool) Has(h types.Hash) bool {
	_, ok := p.byHash[h]
	return ok
}

// Add inserts a transaction. A same-sender same-nonce transaction replaces
// the existing one only when it pays a strictly higher max fee (the standard
// replacement rule); otherwise ErrNonceReplace is returned.
func (p *Pool) Add(tx *types.Transaction) error {
	if p.Has(tx.Hash()) {
		return ErrKnown
	}
	list := p.bySender[tx.From]
	idx := sort.Search(len(list), func(i int) bool { return list[i].Nonce >= tx.Nonce })
	if idx < len(list) && list[idx].Nonce == tx.Nonce {
		old := list[idx]
		if !tx.MaxFee.Gt(old.MaxFee) {
			return fmt.Errorf("%w: nonce %d", ErrNonceReplace, tx.Nonce)
		}
		delete(p.byHash, old.Hash())
		list[idx] = tx
	} else {
		list = append(list, nil)
		copy(list[idx+1:], list[idx:])
		list[idx] = tx
	}
	p.bySender[tx.From] = list
	p.byHash[tx.Hash()] = tx
	return nil
}

// Remove drops one transaction by hash, if present.
func (p *Pool) Remove(h types.Hash) {
	tx, ok := p.byHash[h]
	if !ok {
		return
	}
	delete(p.byHash, h)
	list := p.bySender[tx.From]
	for i, cand := range list {
		if cand.Hash() == h {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(p.bySender, tx.From)
	} else {
		p.bySender[tx.From] = list
	}
}

// RemoveIncluded drops every transaction of the block from the pool, plus
// any now-stale same-sender transactions with lower nonces.
func (p *Pool) RemoveIncluded(txs []*types.Transaction) {
	for _, tx := range txs {
		p.Remove(tx.Hash())
		// Stale lower-nonce leftovers can never execute again.
		list := p.bySender[tx.From]
		for len(list) > 0 && list[0].Nonce <= tx.Nonce {
			delete(p.byHash, list[0].Hash())
			list = list[1:]
		}
		if len(list) == 0 {
			delete(p.bySender, tx.From)
		} else {
			p.bySender[tx.From] = list
		}
	}
}

// Executable returns the transactions that could be included in the next
// block: per sender, the gap-free nonce chain starting at the sender's state
// nonce, restricted to transactions whose max fee covers baseFee. The result
// is ordered by effective tip (descending), ties broken by hash, and capped
// at max entries (0 = no cap).
func (p *Pool) Executable(st *state.State, baseFee types.Wei, max int) []*types.Transaction {
	var out []*types.Transaction
	for sender, list := range p.bySender {
		nonce := st.Nonce(sender)
		for _, tx := range list {
			if tx.Nonce < nonce {
				continue
			}
			if tx.Nonce > nonce {
				break // gap: later txs are not executable yet
			}
			if _, ok := tx.EffectiveTip(baseFee); !ok {
				break // unpayable now; successors can't jump the chain
			}
			out = append(out, tx)
			nonce++
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ti, _ := out[i].EffectiveTip(baseFee)
		tj, _ := out[j].EffectiveTip(baseFee)
		switch ti.Cmp(tj) {
		case 1:
			return true
		case -1:
			return false
		}
		hi, hj := out[i].Hash(), out[j].Hash()
		for k := range hi {
			if hi[k] != hj[k] {
				return hi[k] < hj[k]
			}
		}
		return false
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// All returns every pending transaction ordered by (sender, nonce), senders
// sorted lexicographically. The order is deterministic, so checkpoints that
// serialize the pool and rebuild it via Add reproduce identical pools.
func (p *Pool) All() []*types.Transaction {
	senders := make([]types.Address, 0, len(p.bySender))
	for s := range p.bySender {
		senders = append(senders, s)
	}
	sort.Slice(senders, func(i, j int) bool {
		return bytesLess(senders[i][:], senders[j][:])
	})
	out := make([]*types.Transaction, 0, len(p.byHash))
	for _, s := range senders {
		out = append(out, p.bySender[s]...)
	}
	return out
}

func bytesLess(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Prune drops transactions that can never execute against st (nonce already
// used). Returns the number pruned.
func (p *Pool) Prune(st *state.State) int {
	pruned := 0
	for sender, list := range p.bySender {
		nonce := st.Nonce(sender)
		keep := list[:0]
		for _, tx := range list {
			if tx.Nonce < nonce {
				delete(p.byHash, tx.Hash())
				pruned++
				continue
			}
			keep = append(keep, tx)
		}
		if len(keep) == 0 {
			delete(p.bySender, sender)
		} else {
			p.bySender[sender] = keep
		}
	}
	return pruned
}
