// Package mempool implements the pending-transaction pool block producers
// draw from. It is nonce-aware (a sender's transactions only become
// executable in nonce order) and serves candidates ordered by effective tip,
// which is both what mainnet clients do and the paper's description of
// pre-MEV block building ("proposers have simply ordered transactions
// according to their gas price").
//
// Everything returned is deterministic: ties are broken by transaction hash,
// never by map iteration order.
package mempool

import (
	"errors"
	"fmt"
	"sort"

	"github.com/ethpbs/pbslab/internal/state"
	"github.com/ethpbs/pbslab/internal/types"
)

// Errors returned by Add.
var (
	ErrKnown        = errors.New("mempool: transaction already known")
	ErrNonceReplace = errors.New("mempool: same-nonce transaction with lower fee")
)

// Pool is the pending pool. Not safe for concurrent use.
type Pool struct {
	byHash   map[types.Hash]*types.Transaction
	bySender map[types.Address][]*types.Transaction // sorted by nonce

	// ordered, once indexed, holds every pending transaction sorted by the
	// static part of the Executable order — tip descending, hash ascending
	// — and is maintained incrementally on Add/Remove instead of re-sorted
	// per block. The index is built lazily on the first ExecutableOrdered
	// call so callers of the legacy Executable never pay for it.
	ordered []*types.Transaction
	indexed bool

	// Per-call scratch reused by ExecutableOrdered.
	members     map[types.Hash]bool
	constrained []*types.Transaction
	execOut     []*types.Transaction
}

// New returns an empty pool.
func New() *Pool {
	return &Pool{
		byHash:   map[types.Hash]*types.Transaction{},
		bySender: map[types.Address][]*types.Transaction{},
	}
}

// cmpStatic orders by tip descending, hash ascending: the Executable order
// for transactions whose fee cap does not bind at the current base fee. It
// is a total order (hashes are unique), so any correctly merged sequence is
// byte-identical to a full re-sort.
func cmpStatic(a, b *types.Transaction) int {
	if c := a.MaxTip.Cmp(b.MaxTip); c != 0 {
		return -c // higher tip first
	}
	ha, hb := a.Hash(), b.Hash()
	for k := range ha {
		if ha[k] != hb[k] {
			if ha[k] < hb[k] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// orderedInsert places tx into the ordered index.
func (p *Pool) orderedInsert(tx *types.Transaction) {
	idx := sort.Search(len(p.ordered), func(i int) bool { return cmpStatic(p.ordered[i], tx) >= 0 })
	p.ordered = append(p.ordered, nil)
	copy(p.ordered[idx+1:], p.ordered[idx:])
	p.ordered[idx] = tx
}

// orderedRemove drops tx from the ordered index.
func (p *Pool) orderedRemove(tx *types.Transaction) {
	idx := sort.Search(len(p.ordered), func(i int) bool { return cmpStatic(p.ordered[i], tx) >= 0 })
	for idx < len(p.ordered) && p.ordered[idx] != tx {
		idx++ // identical (tip, hash) cannot happen; linear step is a guard
	}
	if idx < len(p.ordered) {
		copy(p.ordered[idx:], p.ordered[idx+1:])
		p.ordered[len(p.ordered)-1] = nil
		p.ordered = p.ordered[:len(p.ordered)-1]
	}
}

// ensureIndex builds the ordered index from the current pool contents.
func (p *Pool) ensureIndex() {
	if p.indexed {
		return
	}
	p.ordered = p.ordered[:0]
	for _, tx := range p.byHash {
		p.ordered = append(p.ordered, tx)
	}
	sort.Slice(p.ordered, func(i, j int) bool { return cmpStatic(p.ordered[i], p.ordered[j]) < 0 })
	p.indexed = true
}

// Len returns the number of pending transactions.
func (p *Pool) Len() int { return len(p.byHash) }

// Has reports whether the pool holds the transaction.
func (p *Pool) Has(h types.Hash) bool {
	_, ok := p.byHash[h]
	return ok
}

// Add inserts a transaction. A same-sender same-nonce transaction replaces
// the existing one only when it pays a strictly higher max fee (the standard
// replacement rule); otherwise ErrNonceReplace is returned.
func (p *Pool) Add(tx *types.Transaction) error {
	if p.Has(tx.Hash()) {
		return ErrKnown
	}
	list := p.bySender[tx.From]
	idx := sort.Search(len(list), func(i int) bool { return list[i].Nonce >= tx.Nonce })
	if idx < len(list) && list[idx].Nonce == tx.Nonce {
		old := list[idx]
		if !tx.MaxFee.Gt(old.MaxFee) {
			return fmt.Errorf("%w: nonce %d", ErrNonceReplace, tx.Nonce)
		}
		delete(p.byHash, old.Hash())
		if p.indexed {
			p.orderedRemove(old)
		}
		list[idx] = tx
	} else {
		list = append(list, nil)
		copy(list[idx+1:], list[idx:])
		list[idx] = tx
	}
	p.bySender[tx.From] = list
	p.byHash[tx.Hash()] = tx
	if p.indexed {
		p.orderedInsert(tx)
	}
	return nil
}

// Remove drops one transaction by hash, if present.
func (p *Pool) Remove(h types.Hash) {
	tx, ok := p.byHash[h]
	if !ok {
		return
	}
	delete(p.byHash, h)
	if p.indexed {
		p.orderedRemove(tx)
	}
	list := p.bySender[tx.From]
	for i, cand := range list {
		if cand.Hash() == h {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(p.bySender, tx.From)
	} else {
		p.bySender[tx.From] = list
	}
}

// RemoveIncluded drops every transaction of the block from the pool, plus
// any now-stale same-sender transactions with lower nonces.
func (p *Pool) RemoveIncluded(txs []*types.Transaction) {
	for _, tx := range txs {
		p.Remove(tx.Hash())
		// Stale lower-nonce leftovers can never execute again.
		list := p.bySender[tx.From]
		for len(list) > 0 && list[0].Nonce <= tx.Nonce {
			delete(p.byHash, list[0].Hash())
			if p.indexed {
				p.orderedRemove(list[0])
			}
			list = list[1:]
		}
		if len(list) == 0 {
			delete(p.bySender, tx.From)
		} else {
			p.bySender[tx.From] = list
		}
	}
}

// Executable returns the transactions that could be included in the next
// block: per sender, the gap-free nonce chain starting at the sender's state
// nonce, restricted to transactions whose max fee covers baseFee. The result
// is ordered by effective tip (descending), ties broken by hash, and capped
// at max entries (0 = no cap).
func (p *Pool) Executable(st *state.State, baseFee types.Wei, max int) []*types.Transaction {
	var out []*types.Transaction
	for sender, list := range p.bySender {
		nonce := st.Nonce(sender)
		for _, tx := range list {
			if tx.Nonce < nonce {
				continue
			}
			if tx.Nonce > nonce {
				break // gap: later txs are not executable yet
			}
			if _, ok := tx.EffectiveTip(baseFee); !ok {
				break // unpayable now; successors can't jump the chain
			}
			out = append(out, tx)
			nonce++
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ti, _ := out[i].EffectiveTip(baseFee)
		tj, _ := out[j].EffectiveTip(baseFee)
		switch ti.Cmp(tj) {
		case 1:
			return true
		case -1:
			return false
		}
		hi, hj := out[i].Hash(), out[j].Hash()
		for k := range hi {
			if hi[k] != hj[k] {
				return hi[k] < hj[k]
			}
		}
		return false
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// ExecutableOrdered returns exactly what Executable returns, but served
// from the incrementally ordered index instead of a from-scratch sort: the
// fee-cap-unconstrained majority (effective tip = max tip at the current
// base fee) is read off the index in place, only the few transactions whose
// cap binds are sorted per call, and the two runs are merged under the same
// total order. Scratch buffers are pooled across calls; the returned slice
// is valid until the next call.
func (p *Pool) ExecutableOrdered(st *state.State, baseFee types.Wei, max int) []*types.Transaction {
	p.ensureIndex()
	if p.members == nil {
		p.members = map[types.Hash]bool{}
	} else {
		clear(p.members)
	}
	p.constrained = p.constrained[:0]
	out := p.execOut[:0]

	// Membership: per sender, the gap-free executable nonce chain — same
	// walk as Executable. Iteration order does not matter: ordering comes
	// from the index and the merge below.
	for sender, list := range p.bySender {
		nonce := st.Nonce(sender)
		for _, tx := range list {
			if tx.Nonce < nonce {
				continue
			}
			if tx.Nonce > nonce {
				break
			}
			if _, ok := tx.EffectiveTip(baseFee); !ok {
				break
			}
			// The cap binds iff baseFee+maxTip exceeds maxFee; those few
			// sort below their max-tip position and are merged separately.
			if baseFee.Add(tx.MaxTip).Gt(tx.MaxFee) {
				p.constrained = append(p.constrained, tx)
			} else {
				p.members[tx.Hash()] = true
			}
			nonce++
		}
	}
	sort.Slice(p.constrained, func(i, j int) bool {
		ti, _ := p.constrained[i].EffectiveTip(baseFee)
		tj, _ := p.constrained[j].EffectiveTip(baseFee)
		if c := ti.Cmp(tj); c != 0 {
			return c > 0
		}
		return hashLess(p.constrained[i].Hash(), p.constrained[j].Hash())
	})

	// Merge the index run (effective tip = max tip) with the constrained
	// run under (effective tip desc, hash asc) — the Executable order.
	ci := 0
	for _, tx := range p.ordered {
		if !p.members[tx.Hash()] {
			continue
		}
		for ci < len(p.constrained) {
			c := p.constrained[ci]
			effC, _ := c.EffectiveTip(baseFee)
			cmp := effC.Cmp(tx.MaxTip)
			if cmp > 0 || (cmp == 0 && hashLess(c.Hash(), tx.Hash())) {
				out = append(out, c)
				ci++
				continue
			}
			break
		}
		out = append(out, tx)
	}
	for ; ci < len(p.constrained); ci++ {
		out = append(out, p.constrained[ci])
	}
	p.execOut = out
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

func hashLess(a, b types.Hash) bool {
	for k := range a {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

// All returns every pending transaction ordered by (sender, nonce), senders
// sorted lexicographically. The order is deterministic, so checkpoints that
// serialize the pool and rebuild it via Add reproduce identical pools.
func (p *Pool) All() []*types.Transaction {
	senders := make([]types.Address, 0, len(p.bySender))
	for s := range p.bySender {
		senders = append(senders, s)
	}
	sort.Slice(senders, func(i, j int) bool {
		return bytesLess(senders[i][:], senders[j][:])
	})
	out := make([]*types.Transaction, 0, len(p.byHash))
	for _, s := range senders {
		out = append(out, p.bySender[s]...)
	}
	return out
}

func bytesLess(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Prune drops transactions that can never execute against st (nonce already
// used). Returns the number pruned.
func (p *Pool) Prune(st *state.State) int {
	pruned := 0
	for sender, list := range p.bySender {
		nonce := st.Nonce(sender)
		keep := list[:0]
		for _, tx := range list {
			if tx.Nonce < nonce {
				delete(p.byHash, tx.Hash())
				if p.indexed {
					p.orderedRemove(tx)
				}
				pruned++
				continue
			}
			keep = append(keep, tx)
		}
		if len(keep) == 0 {
			delete(p.bySender, sender)
		} else {
			p.bySender[sender] = keep
		}
	}
	return pruned
}
