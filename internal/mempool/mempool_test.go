package mempool

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ethpbs/pbslab/internal/crypto"
	"github.com/ethpbs/pbslab/internal/state"
	"github.com/ethpbs/pbslab/internal/types"
	"github.com/ethpbs/pbslab/internal/u256"
)

var (
	alice = crypto.AddressFromSeed("alice")
	bob   = crypto.AddressFromSeed("bob")
	carol = crypto.AddressFromSeed("carol")
)

func tx(from types.Address, nonce uint64, maxFeeGwei, tipGwei uint64) *types.Transaction {
	return types.NewTransaction(nonce, from, carol, u256.Zero, 21_000,
		types.Gwei(maxFeeGwei), types.Gwei(tipGwei), nil)
}

func TestAddAndHas(t *testing.T) {
	p := New()
	t1 := tx(alice, 0, 100, 2)
	if err := p.Add(t1); err != nil {
		t.Fatal(err)
	}
	if !p.Has(t1.Hash()) || p.Len() != 1 {
		t.Error("tx not stored")
	}
	if err := p.Add(t1); !errors.Is(err, ErrKnown) {
		t.Errorf("duplicate add: %v", err)
	}
}

func TestReplacement(t *testing.T) {
	p := New()
	low := tx(alice, 0, 100, 1)
	equal := tx(alice, 0, 100, 2)
	high := tx(alice, 0, 120, 2)
	if err := p.Add(low); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(equal); !errors.Is(err, ErrNonceReplace) {
		t.Errorf("equal-fee replacement: %v", err)
	}
	if err := p.Add(high); err != nil {
		t.Fatal(err)
	}
	if p.Has(low.Hash()) || !p.Has(high.Hash()) || p.Len() != 1 {
		t.Error("replacement bookkeeping wrong")
	}
}

func TestExecutableNonceChain(t *testing.T) {
	p := New()
	st := state.New()
	// Nonces 0,1,3 pending: only 0 and 1 are executable (gap at 2).
	for _, n := range []uint64{0, 1, 3} {
		if err := p.Add(tx(alice, n, 100, 2)); err != nil {
			t.Fatal(err)
		}
	}
	got := p.Executable(st, types.Gwei(10), 0)
	if len(got) != 2 {
		t.Fatalf("executable = %d, want 2", len(got))
	}
	if got[0].Nonce > got[1].Nonce {
		// Equal tips: order by hash, but both nonces must be present.
		if got[0].Nonce+got[1].Nonce != 1 {
			t.Errorf("wrong nonces: %d, %d", got[0].Nonce, got[1].Nonce)
		}
	}
}

func TestExecutableRespectsStateNonce(t *testing.T) {
	p := New()
	st := state.New()
	st.SetNonce(alice, 1)
	if err := p.Add(tx(alice, 0, 100, 2)); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx(alice, 1, 100, 2)); err != nil {
		t.Fatal(err)
	}
	got := p.Executable(st, types.Gwei(10), 0)
	if len(got) != 1 || got[0].Nonce != 1 {
		t.Errorf("executable = %+v", got)
	}
}

func TestExecutableFeeFloor(t *testing.T) {
	p := New()
	st := state.New()
	// First tx cannot pay the base fee, so the whole chain stalls.
	if err := p.Add(tx(alice, 0, 5, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx(alice, 1, 100, 1)); err != nil {
		t.Fatal(err)
	}
	if got := p.Executable(st, types.Gwei(10), 0); len(got) != 0 {
		t.Errorf("executable = %d, want 0 (stalled chain)", len(got))
	}
}

func TestExecutableTipOrdering(t *testing.T) {
	p := New()
	st := state.New()
	small := tx(alice, 0, 100, 1)
	big := tx(bob, 0, 100, 9)
	if err := p.Add(small); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(big); err != nil {
		t.Fatal(err)
	}
	got := p.Executable(st, types.Gwei(10), 0)
	if len(got) != 2 || got[0] != big || got[1] != small {
		t.Error("not ordered by tip")
	}
	// Cap respected.
	if got := p.Executable(st, types.Gwei(10), 1); len(got) != 1 || got[0] != big {
		t.Error("cap not respected or wrong winner")
	}
}

func TestExecutableDeterministic(t *testing.T) {
	build := func() *Pool {
		p := New()
		for i := 0; i < 50; i++ {
			sender := crypto.AddressFromSeed(string(rune('a' + i%7)))
			_ = p.Add(tx(sender, uint64(i/7), 100, uint64(1+i%3)))
		}
		return p
	}
	st := state.New()
	a := build().Executable(st, types.Gwei(10), 0)
	b := build().Executable(st, types.Gwei(10), 0)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Hash() != b[i].Hash() {
			t.Fatal("ordering not deterministic")
		}
	}
}

func TestRemoveIncluded(t *testing.T) {
	p := New()
	t0 := tx(alice, 0, 100, 2)
	t1 := tx(alice, 1, 100, 2)
	t2 := tx(alice, 2, 100, 2)
	for _, x := range []*types.Transaction{t0, t1, t2} {
		if err := p.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	// Including nonce 1 also clears the stale nonce 0.
	p.RemoveIncluded([]*types.Transaction{t1})
	if p.Has(t0.Hash()) || p.Has(t1.Hash()) {
		t.Error("included/stale txs not removed")
	}
	if !p.Has(t2.Hash()) {
		t.Error("future tx removed")
	}
}

func TestRemoveUnknownNoop(t *testing.T) {
	p := New()
	p.Remove(crypto.Keccak256([]byte("missing")))
	if p.Len() != 0 {
		t.Error("phantom removal")
	}
}

func TestPrune(t *testing.T) {
	p := New()
	st := state.New()
	st.SetNonce(alice, 2)
	for _, n := range []uint64{0, 1, 2} {
		if err := p.Add(tx(alice, n, 100, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Prune(st); got != 2 {
		t.Errorf("pruned = %d", got)
	}
	if p.Len() != 1 {
		t.Errorf("left = %d", p.Len())
	}
}

// TestPoolInvariantsQuick drives the pool with random operation sequences
// and checks structural invariants after every step: hash-index consistency,
// per-sender nonce ordering, and Executable's gap-free chains.
func TestPoolInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := New()
		st := state.New()
		senders := []types.Address{alice, bob, carol}
		live := map[types.Hash]*types.Transaction{}

		for step := 0; step < 200; step++ {
			switch r.Intn(4) {
			case 0, 1: // add
				s := senders[r.Intn(len(senders))]
				nonce := uint64(r.Intn(10))
				feeG := uint64(50 + r.Intn(100))
				cand := tx(s, nonce, feeG, uint64(1+r.Intn(5)))
				err := p.Add(cand)
				if err == nil {
					// Replacement may have evicted an older same-nonce tx.
					for h, old := range live {
						if old.From == s && old.Nonce == nonce && h != cand.Hash() {
							delete(live, h)
						}
					}
					live[cand.Hash()] = cand
				}
			case 2: // remove a random live tx
				for h := range live {
					p.Remove(h)
					delete(live, h)
					break
				}
			case 3: // advance a sender's state nonce and prune
				s := senders[r.Intn(len(senders))]
				st.SetNonce(s, uint64(r.Intn(6)))
				p.Prune(st)
				for h, cand := range live {
					if cand.Nonce < st.Nonce(cand.From) {
						delete(live, h)
					}
				}
			}

			// Invariant 1: Len matches the live set, Has agrees.
			if p.Len() != len(live) {
				return false
			}
			for h := range live {
				if !p.Has(h) {
					return false
				}
			}

			// Invariant 2: Executable returns gap-free per-sender chains.
			exec := p.Executable(st, types.Gwei(10), 0)
			next := map[types.Address]uint64{}
			for _, s := range senders {
				next[s] = st.Nonce(s)
			}
			perSender := map[types.Address][]uint64{}
			for _, cand := range exec {
				perSender[cand.From] = append(perSender[cand.From], cand.Nonce)
			}
			for s, nonces := range perSender {
				want := next[s]
				// Executable is tip-ordered globally, so sort per sender.
				sortUint64(nonces)
				for _, n := range nonces {
					if n != want {
						return false
					}
					want++
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func sortUint64(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// TestExecutableOrderedMatchesExecutable drives a pool through a randomized
// sequence of adds, removals, inclusions, prunes, and base-fee changes and
// asserts ExecutableOrdered is element-for-element identical to the legacy
// from-scratch Executable at every step.
func TestExecutableOrderedMatchesExecutable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	senders := make([]types.Address, 12)
	for i := range senders {
		senders[i] = crypto.AddressFromSeed("ord-sender-" + string(rune('a'+i)))
	}
	st := state.New()
	p := New()
	var live []*types.Transaction

	check := func(step int, baseFee types.Wei, max int) {
		t.Helper()
		want := p.Executable(st, baseFee, max)
		got := p.ExecutableOrdered(st, baseFee, max)
		if len(want) != len(got) {
			t.Fatalf("step %d baseFee=%s max=%d: len %d != %d", step, baseFee, max, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("step %d baseFee=%s max=%d: position %d differs: %s != %s",
					step, baseFee, max, i, got[i].Hash(), want[i].Hash())
			}
		}
	}

	for step := 0; step < 400; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // add, fee caps chosen so some bind at higher base fees
			s := senders[rng.Intn(len(senders))]
			nonce := st.Nonce(s) + uint64(rng.Intn(4))
			cand := tx(s, nonce, 8+uint64(rng.Intn(30)), 1+uint64(rng.Intn(12)))
			if err := p.Add(cand); err == nil {
				live = append(live, cand)
			}
		case op < 6 && len(live) > 0: // remove one
			i := rng.Intn(len(live))
			p.Remove(live[i].Hash())
			live = append(live[:i], live[i+1:]...)
		case op < 7 && len(live) > 0: // simulate inclusion of a few
			n := 1 + rng.Intn(3)
			if n > len(live) {
				n = len(live)
			}
			incl := make([]*types.Transaction, n)
			copy(incl, live[:n])
			for _, cand := range incl {
				if st.Nonce(cand.From) <= cand.Nonce {
					st.SetNonce(cand.From, cand.Nonce+1)
				}
			}
			p.RemoveIncluded(incl)
			live = live[n:]
		case op < 8: // advance a nonce out from under the pool, then prune
			s := senders[rng.Intn(len(senders))]
			st.SetNonce(s, st.Nonce(s)+1)
			p.Prune(st)
			kept := live[:0]
			for _, cand := range live {
				if p.Has(cand.Hash()) {
					kept = append(kept, cand)
				}
			}
			live = kept
		}
		baseFee := types.Gwei(1 + uint64(rng.Intn(25)))
		max := 0
		if rng.Intn(3) == 0 {
			max = 1 + rng.Intn(8)
		}
		check(step, baseFee, max)
	}
}

func BenchmarkExecutableOrdered(b *testing.B) {
	st := state.New()
	p := New()
	for i := 0; i < 400; i++ {
		s := crypto.AddressFromSeed("bench-sender-" + string(rune('A'+i%64)))
		cand := tx(s, st.Nonce(s)+uint64(i/64), 20+uint64(i%30), 1+uint64(i%12))
		_ = p.Add(cand)
	}
	baseFee := types.Gwei(12)
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Executable(st, baseFee, 400)
		}
	})
	b.Run("ordered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.ExecutableOrdered(st, baseFee, 400)
		}
	})
}
