// Package u256 implements fixed-width 256-bit unsigned integer arithmetic.
//
// Ethereum balances, transaction values and fee computations operate on
// 256-bit unsigned words. The standard library offers math/big, which is
// arbitrary-precision and allocation-heavy; this package provides a compact
// value type with the exact wrap-around semantics of on-chain arithmetic,
// built only on math/bits. It is the substrate for types.Wei.
//
// The zero value of Int is the number zero and is ready to use.
package u256

import (
	"errors"
	"fmt"
	"math/big"
	"math/bits"
	"strings"
)

// Int is a 256-bit unsigned integer, stored as four 64-bit limbs in
// little-endian limb order: limb 0 holds the least significant 64 bits.
type Int [4]uint64

// Common small constants. These are values, not pointers, so callers cannot
// accidentally mutate shared state.
var (
	Zero = Int{}
	One  = Int{1, 0, 0, 0}
)

// Max is the largest representable value, 2^256 - 1.
var Max = Int{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}

// ErrOverflow is returned by checked constructors when a value does not fit
// in 256 bits.
var ErrOverflow = errors.New("u256: value overflows 256 bits")

// New returns an Int holding the 64-bit value v.
func New(v uint64) Int {
	return Int{v, 0, 0, 0}
}

// FromLimbs builds an Int from explicit little-endian limbs.
func FromLimbs(l0, l1, l2, l3 uint64) Int {
	return Int{l0, l1, l2, l3}
}

// FromBig converts a big.Int. It returns ErrOverflow when b is negative or
// wider than 256 bits.
func FromBig(b *big.Int) (Int, error) {
	if b.Sign() < 0 || b.BitLen() > 256 {
		return Int{}, ErrOverflow
	}
	var x Int
	words := b.Bits()
	for i, w := range words {
		if i >= 4 {
			break
		}
		x[i] = uint64(w)
	}
	return x, nil
}

// MustFromBig is FromBig but panics on overflow. Intended for constants.
func MustFromBig(b *big.Int) Int {
	x, err := FromBig(b)
	if err != nil {
		panic(err)
	}
	return x
}

// FromDecimal parses a base-10 string into an Int.
func FromDecimal(s string) (Int, error) {
	if s == "" {
		return Int{}, errors.New("u256: empty decimal string")
	}
	var x Int
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return Int{}, fmt.Errorf("u256: invalid decimal digit %q", c)
		}
		x, _ = x.MulOverflow(New(10))
		var carry bool
		x, carry = x.AddOverflow(New(uint64(c - '0')))
		if carry {
			return Int{}, ErrOverflow
		}
		// Check the multiply overflow after the add so "0" prefixed strings
		// of any length still parse; detect via reconstruction instead.
	}
	// Re-validate: reparse via big.Int for overflow detection on the multiply
	// path. Cheap relative to typical call sites (parsing config/test data).
	b, ok := new(big.Int).SetString(s, 10)
	if !ok {
		return Int{}, fmt.Errorf("u256: invalid decimal %q", s)
	}
	if b.BitLen() > 256 {
		return Int{}, ErrOverflow
	}
	return x, nil
}

// MustFromDecimal is FromDecimal but panics on error. Intended for constants.
func MustFromDecimal(s string) Int {
	x, err := FromDecimal(s)
	if err != nil {
		panic(err)
	}
	return x
}

// FromHex parses a hex string, with or without an 0x prefix.
func FromHex(s string) (Int, error) {
	s = strings.TrimPrefix(strings.TrimPrefix(s, "0x"), "0X")
	if s == "" {
		return Int{}, errors.New("u256: empty hex string")
	}
	if len(s) > 64 {
		return Int{}, ErrOverflow
	}
	var x Int
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return Int{}, fmt.Errorf("u256: invalid hex digit %q", c)
		}
		x = x.Lsh(4)
		x[0] |= d
	}
	return x, nil
}

// IsZero reports whether x == 0.
func (x Int) IsZero() bool {
	return x[0]|x[1]|x[2]|x[3] == 0
}

// IsUint64 reports whether x fits in a uint64.
func (x Int) IsUint64() bool {
	return x[1]|x[2]|x[3] == 0
}

// Uint64 returns the low 64 bits of x.
func (x Int) Uint64() uint64 { return x[0] }

// BitLen returns the number of bits required to represent x.
func (x Int) BitLen() int {
	switch {
	case x[3] != 0:
		return 192 + bits.Len64(x[3])
	case x[2] != 0:
		return 128 + bits.Len64(x[2])
	case x[1] != 0:
		return 64 + bits.Len64(x[1])
	default:
		return bits.Len64(x[0])
	}
}

// Cmp compares x and y, returning -1, 0 or +1.
func (x Int) Cmp(y Int) int {
	for i := 3; i >= 0; i-- {
		switch {
		case x[i] < y[i]:
			return -1
		case x[i] > y[i]:
			return 1
		}
	}
	return 0
}

// Lt reports x < y.
func (x Int) Lt(y Int) bool { return x.Cmp(y) < 0 }

// Gt reports x > y.
func (x Int) Gt(y Int) bool { return x.Cmp(y) > 0 }

// Eq reports x == y.
func (x Int) Eq(y Int) bool { return x == y }

// AddOverflow returns x+y mod 2^256 and whether the addition wrapped.
func (x Int) AddOverflow(y Int) (Int, bool) {
	var z Int
	var c uint64
	z[0], c = bits.Add64(x[0], y[0], 0)
	z[1], c = bits.Add64(x[1], y[1], c)
	z[2], c = bits.Add64(x[2], y[2], c)
	z[3], c = bits.Add64(x[3], y[3], c)
	return z, c != 0
}

// Add returns x+y mod 2^256 (EVM wrap-around semantics).
func (x Int) Add(y Int) Int {
	z, _ := x.AddOverflow(y)
	return z
}

// SubUnderflow returns x-y mod 2^256 and whether the subtraction borrowed.
func (x Int) SubUnderflow(y Int) (Int, bool) {
	var z Int
	var b uint64
	z[0], b = bits.Sub64(x[0], y[0], 0)
	z[1], b = bits.Sub64(x[1], y[1], b)
	z[2], b = bits.Sub64(x[2], y[2], b)
	z[3], b = bits.Sub64(x[3], y[3], b)
	return z, b != 0
}

// Sub returns x-y mod 2^256 (EVM wrap-around semantics).
func (x Int) Sub(y Int) Int {
	z, _ := x.SubUnderflow(y)
	return z
}

// SatSub returns x-y, clamped at zero. Convenient for balance deltas where
// the caller has already established x >= y "morally" and wants safety.
func (x Int) SatSub(y Int) Int {
	z, borrow := x.SubUnderflow(y)
	if borrow {
		return Zero
	}
	return z
}

// MulOverflow returns x*y mod 2^256 and whether the product overflowed.
func (x Int) MulOverflow(y Int) (Int, bool) {
	p := mul512(x, y)
	z := Int{p[0], p[1], p[2], p[3]}
	return z, p[4]|p[5]|p[6]|p[7] != 0
}

// mul512 computes the full 512-bit product of x and y as eight little-endian
// 64-bit limbs, using schoolbook multiplication. Per cell, the accumulated
// value x[i]*y[j] + p[i+j] + carry is at most (2^64-1)^2 + 2*(2^64-1)
// = 2^128 - 1, so the hi:lo pair never wraps.
func mul512(x, y Int) [8]uint64 {
	var p [8]uint64
	for i := 0; i < 4; i++ {
		var carry uint64
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(x[i], y[j])
			var c uint64
			lo, c = bits.Add64(lo, p[i+j], 0)
			hi += c
			lo, c = bits.Add64(lo, carry, 0)
			hi += c
			p[i+j] = lo
			carry = hi
		}
		p[i+4] = carry
	}
	return p
}

// Mul returns x*y mod 2^256.
func (x Int) Mul(y Int) Int {
	z, _ := x.MulOverflow(y)
	return z
}

// Mul64 returns x*v mod 2^256. Faster special case for scaling by a word.
func (x Int) Mul64(v uint64) Int {
	var z Int
	var carry uint64
	h0, l0 := bits.Mul64(x[0], v)
	z[0] = l0
	h1, l1 := bits.Mul64(x[1], v)
	z[1], carry = bits.Add64(l1, h0, 0)
	h2, l2 := bits.Mul64(x[2], v)
	z[2], carry = bits.Add64(l2, h1, carry)
	_, l3 := bits.Mul64(x[3], v)
	z[3], _ = bits.Add64(l3, h2, carry)
	return z
}

// Lsh returns x << n. Shifts of 256 or more yield zero.
func (x Int) Lsh(n uint) Int {
	if n >= 256 {
		return Zero
	}
	limbShift := n / 64
	bitShift := n % 64
	var z Int
	for i := 3; i >= int(limbShift); i-- {
		src := i - int(limbShift)
		z[i] = x[src] << bitShift
		if bitShift > 0 && src > 0 {
			z[i] |= x[src-1] >> (64 - bitShift)
		}
	}
	return z
}

// Rsh returns x >> n. Shifts of 256 or more yield zero.
func (x Int) Rsh(n uint) Int {
	if n >= 256 {
		return Zero
	}
	limbShift := n / 64
	bitShift := n % 64
	var z Int
	for i := 0; i+int(limbShift) <= 3; i++ {
		src := i + int(limbShift)
		z[i] = x[src] >> bitShift
		if bitShift > 0 && src < 3 {
			z[i] |= x[src+1] << (64 - bitShift)
		}
	}
	return z
}

// Div returns x/y, truncated. Division by zero yields zero, mirroring the
// EVM's DIV semantics.
func (x Int) Div(y Int) Int {
	q, _ := x.DivMod(y)
	return q
}

// Mod returns x%y. Modulo by zero yields zero, mirroring the EVM's MOD.
func (x Int) Mod(y Int) Int {
	_, r := x.DivMod(y)
	return r
}

// DivMod returns the quotient and remainder of x/y. Division by zero yields
// (0, 0).
//
// Multi-limb divisors use Knuth's Algorithm D (TAOCP 4.3.1), the same
// approach as the go-ethereum uint256 library; single-limb divisors take a
// bits.Div64 fast path. This sits on the AMM pricing hot path.
func (x Int) DivMod(y Int) (Int, Int) {
	if y.IsZero() {
		return Zero, Zero
	}
	if x.Cmp(y) < 0 {
		return Zero, x
	}
	if y.IsUint64() {
		q, r := x.divMod64(y[0])
		return q, New(r)
	}

	// Significant limb counts: n >= 2 (multi-limb divisor), m >= n.
	n := 4
	for y[n-1] == 0 {
		n--
	}
	m := 4
	for x[m-1] == 0 {
		m--
	}

	// Normalize so the divisor's top limb has its high bit set. Go defines
	// shifts >= 64 as zero, so the shift == 0 case needs no branches.
	shift := uint(bits.LeadingZeros64(y[n-1]))
	var dn [4]uint64
	for i := n - 1; i > 0; i-- {
		dn[i] = y[i]<<shift | y[i-1]>>(64-shift)
	}
	dn[0] = y[0] << shift

	var un [5]uint64
	un[m] = x[m-1] >> (64 - shift)
	for i := m - 1; i > 0; i-- {
		un[i] = x[i]<<shift | x[i-1]>>(64-shift)
	}
	un[0] = x[0] << shift

	var q Int
	for j := m - n; j >= 0; j-- {
		// Estimate the quotient digit from the top two dividend limbs.
		var qhat, rhat uint64
		skipRefine := false
		if un[j+n] >= dn[n-1] {
			// bits.Div64 would overflow; the true digit is the maximum.
			qhat = ^uint64(0)
			var c uint64
			rhat, c = bits.Add64(un[j+n-1], dn[n-1], 0)
			skipRefine = c != 0 // rhat >= 2^64: refinement test is vacuous
		} else {
			qhat, rhat = bits.Div64(un[j+n], un[j+n-1], dn[n-1])
		}
		// Refine: qhat may be at most 2 too large.
		for !skipRefine && greaterTwoLimb(qhat, dn[n-2], rhat, un[j+n-2]) {
			qhat--
			var carry uint64
			rhat, carry = bits.Add64(rhat, dn[n-1], 0)
			if carry != 0 {
				break
			}
		}
		// Multiply-subtract qhat*dn from un[j..j+n].
		var borrow, mulCarry uint64
		for i := 0; i < n; i++ {
			hi, lo := bits.Mul64(qhat, dn[i])
			lo, c := bits.Add64(lo, mulCarry, 0)
			mulCarry = hi + c
			un[j+i], borrow = bits.Sub64(un[j+i], lo, borrow)
		}
		un[j+n], borrow = bits.Sub64(un[j+n], mulCarry, borrow)
		if borrow != 0 {
			// Estimate was one too large after all: add the divisor back.
			qhat--
			var carry uint64
			for i := 0; i < n; i++ {
				un[j+i], carry = bits.Add64(un[j+i], dn[i], carry)
			}
			un[j+n] += carry
		}
		q[j] = qhat
	}

	// Denormalize the remainder out of un[0..n-1].
	var r Int
	for i := 0; i < n; i++ {
		r[i] = un[i] >> shift
		if shift > 0 {
			r[i] |= un[i+1] << (64 - shift)
		}
	}
	return q, r
}

// greaterTwoLimb reports whether qhat*d exceeds the two-limb value
// (rhat, u), used by the Knuth digit refinement.
func greaterTwoLimb(qhat, d, rhat, u uint64) bool {
	hi, lo := bits.Mul64(qhat, d)
	return hi > rhat || (hi == rhat && lo > u)
}

// divMod64 divides x by a non-zero 64-bit word.
func (x Int) divMod64(v uint64) (Int, uint64) {
	var q Int
	var rem uint64
	for i := 3; i >= 0; i-- {
		q[i], rem = bits.Div64(rem, x[i], v)
	}
	return q, rem
}

// Div64 returns x/v for a 64-bit divisor; division by zero yields zero.
func (x Int) Div64(v uint64) Int {
	if v == 0 {
		return Zero
	}
	q, _ := x.divMod64(v)
	return q
}

// MulDiv returns x*m/d computed without intermediate overflow, truncated.
// Division by zero yields zero. This is the workhorse for pro-rata splits
// (fee shares, AMM quotes).
func (x Int) MulDiv(m, d Int) Int {
	if d.IsZero() {
		return Zero
	}
	p, overflow := x.MulOverflow(m)
	if !overflow {
		return p.Div(d)
	}
	// Fall back to big.Int for the rare 512-bit intermediate. Correctness
	// over speed here: the simulator only hits this on extreme balances.
	xb, mb, db := x.ToBig(), m.ToBig(), d.ToBig()
	xb.Mul(xb, mb).Quo(xb, db)
	r, err := FromBig(xb)
	if err != nil {
		return Max
	}
	return r
}

// ToBig converts x to a freshly allocated big.Int.
func (x Int) ToBig() *big.Int {
	b := new(big.Int)
	for i := 3; i >= 0; i-- {
		b.Lsh(b, 64)
		b.Or(b, new(big.Int).SetUint64(x[i]))
	}
	return b
}

// Float64 converts x to a float64, with the usual precision loss above 2^53.
func (x Int) Float64() float64 {
	f := 0.0
	scale := 1.0
	for i := 0; i < 4; i++ {
		f += float64(x[i]) * scale
		scale *= 18446744073709551616.0 // 2^64
	}
	return f
}

// String renders x in base 10.
func (x Int) String() string {
	if x.IsZero() {
		return "0"
	}
	var digits []byte
	for !x.IsZero() {
		var rem uint64
		x, rem = x.divMod64(10)
		digits = append(digits, byte('0'+rem))
	}
	for i, j := 0, len(digits)-1; i < j; i, j = i+1, j-1 {
		digits[i], digits[j] = digits[j], digits[i]
	}
	return string(digits)
}

// Hex renders x as 0x-prefixed lowercase hex without leading zeros.
func (x Int) Hex() string {
	if x.IsZero() {
		return "0x0"
	}
	var sb strings.Builder
	sb.WriteString("0x")
	started := false
	for i := 3; i >= 0; i-- {
		if !started {
			if x[i] == 0 {
				continue
			}
			fmt.Fprintf(&sb, "%x", x[i])
			started = true
		} else {
			fmt.Fprintf(&sb, "%016x", x[i])
		}
	}
	return sb.String()
}

// Bytes32 returns the big-endian 32-byte representation of x.
func (x Int) Bytes32() [32]byte {
	var out [32]byte
	for i := 0; i < 4; i++ {
		limb := x[3-i]
		for j := 0; j < 8; j++ {
			out[i*8+j] = byte(limb >> (56 - 8*j))
		}
	}
	return out
}

// FromBytes32 builds an Int from a big-endian 32-byte array.
func FromBytes32(b [32]byte) Int {
	var x Int
	for i := 0; i < 4; i++ {
		var limb uint64
		for j := 0; j < 8; j++ {
			limb = limb<<8 | uint64(b[i*8+j])
		}
		x[3-i] = limb
	}
	return x
}
