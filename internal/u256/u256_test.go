package u256

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

var two256 = new(big.Int).Lsh(big.NewInt(1), 256)

func toBigMod(b *big.Int) *big.Int {
	return new(big.Int).Mod(b, two256)
}

func randInt(r *rand.Rand) Int {
	// Bias toward interesting shapes: small values, single-limb values and
	// full-width values all appear.
	switch r.Intn(4) {
	case 0:
		return New(r.Uint64() % 1000)
	case 1:
		return New(r.Uint64())
	case 2:
		return Int{r.Uint64(), r.Uint64(), 0, 0}
	default:
		return Int{r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()}
	}
}

func TestNewAndUint64(t *testing.T) {
	for _, v := range []uint64{0, 1, 42, 1 << 63, ^uint64(0)} {
		x := New(v)
		if !x.IsUint64() || x.Uint64() != v {
			t.Errorf("New(%d) round trip failed: %v", v, x)
		}
	}
}

func TestAddSubIdentity(t *testing.T) {
	f := func(a, b Int) bool {
		return a.Add(b).Sub(b) == a
	}
	cfg := &quick.Config{Values: randValues}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// randValues fills args with random Ints for testing/quick.
func randValues(args []reflect.Value, r *rand.Rand) {
	for i := range args {
		args[i] = reflect.ValueOf(randInt(r))
	}
}

func TestAddMatchesBig(t *testing.T) {
	f := func(a, b Int) bool {
		got := a.Add(b)
		want := toBigMod(new(big.Int).Add(a.ToBig(), b.ToBig()))
		return got.ToBig().Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{Values: randValues}); err != nil {
		t.Error(err)
	}
}

func TestSubMatchesBig(t *testing.T) {
	f := func(a, b Int) bool {
		got := a.Sub(b)
		want := toBigMod(new(big.Int).Sub(a.ToBig(), b.ToBig()))
		return got.ToBig().Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{Values: randValues}); err != nil {
		t.Error(err)
	}
}

func TestMulMatchesBig(t *testing.T) {
	f := func(a, b Int) bool {
		got := a.Mul(b)
		want := toBigMod(new(big.Int).Mul(a.ToBig(), b.ToBig()))
		return got.ToBig().Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{Values: randValues, MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMulOverflowFlagMatchesBig(t *testing.T) {
	f := func(a, b Int) bool {
		_, over := a.MulOverflow(b)
		exact := new(big.Int).Mul(a.ToBig(), b.ToBig())
		return over == (exact.BitLen() > 256)
	}
	if err := quick.Check(f, &quick.Config{Values: randValues, MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMul64MatchesMul(t *testing.T) {
	f := func(a Int, v uint64) bool {
		return a.Mul64(v) == a.Mul(New(v))
	}
	vals := func(args []reflect.Value, r *rand.Rand) {
		args[0] = reflect.ValueOf(randInt(r))
		args[1] = reflect.ValueOf(r.Uint64())
	}
	if err := quick.Check(f, &quick.Config{Values: vals}); err != nil {
		t.Error(err)
	}
}

func TestDivModMatchesBig(t *testing.T) {
	f := func(a, b Int) bool {
		if b.IsZero() {
			q, r := a.DivMod(b)
			return q.IsZero() && r.IsZero()
		}
		q, r := a.DivMod(b)
		wantQ := new(big.Int).Quo(a.ToBig(), b.ToBig())
		wantR := new(big.Int).Rem(a.ToBig(), b.ToBig())
		return q.ToBig().Cmp(wantQ) == 0 && r.ToBig().Cmp(wantR) == 0
	}
	if err := quick.Check(f, &quick.Config{Values: randValues, MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDivModReconstruct(t *testing.T) {
	f := func(a, b Int) bool {
		if b.IsZero() {
			return true
		}
		q, r := a.DivMod(b)
		if r.Cmp(b) >= 0 {
			return false
		}
		back, over := q.MulOverflow(b)
		if over {
			return false
		}
		back, carry := back.AddOverflow(r)
		return !carry && back == a
	}
	if err := quick.Check(f, &quick.Config{Values: randValues, MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestShiftsMatchBig(t *testing.T) {
	f := func(a Int, n uint) bool {
		n %= 300
		wantL := toBigMod(new(big.Int).Lsh(a.ToBig(), n))
		wantR := new(big.Int).Rsh(a.ToBig(), n)
		return a.Lsh(n).ToBig().Cmp(wantL) == 0 && a.Rsh(n).ToBig().Cmp(wantR) == 0
	}
	vals := func(args []reflect.Value, r *rand.Rand) {
		args[0] = reflect.ValueOf(randInt(r))
		args[1] = reflect.ValueOf(uint(r.Intn(300)))
	}
	if err := quick.Check(f, &quick.Config{Values: vals}); err != nil {
		t.Error(err)
	}
}

func TestCmpMatchesBig(t *testing.T) {
	f := func(a, b Int) bool {
		return a.Cmp(b) == a.ToBig().Cmp(b.ToBig())
	}
	if err := quick.Check(f, &quick.Config{Values: randValues}); err != nil {
		t.Error(err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	f := func(a Int) bool {
		parsed, err := FromDecimal(a.String())
		return err == nil && parsed == a
	}
	if err := quick.Check(f, &quick.Config{Values: randValues}); err != nil {
		t.Error(err)
	}
}

func TestHexRoundTrip(t *testing.T) {
	f := func(a Int) bool {
		parsed, err := FromHex(a.Hex())
		return err == nil && parsed == a
	}
	if err := quick.Check(f, &quick.Config{Values: randValues}); err != nil {
		t.Error(err)
	}
}

func TestBytes32RoundTrip(t *testing.T) {
	f := func(a Int) bool {
		return FromBytes32(a.Bytes32()) == a
	}
	if err := quick.Check(f, &quick.Config{Values: randValues}); err != nil {
		t.Error(err)
	}
}

func TestBigRoundTrip(t *testing.T) {
	f := func(a Int) bool {
		back, err := FromBig(a.ToBig())
		return err == nil && back == a
	}
	if err := quick.Check(f, &quick.Config{Values: randValues}); err != nil {
		t.Error(err)
	}
}

func TestFromBigRejects(t *testing.T) {
	if _, err := FromBig(big.NewInt(-1)); err == nil {
		t.Error("FromBig accepted a negative value")
	}
	if _, err := FromBig(two256); err == nil {
		t.Error("FromBig accepted 2^256")
	}
}

func TestMulDiv(t *testing.T) {
	cases := []struct {
		x, m, d, want Int
	}{
		{New(100), New(3), New(2), New(150)},
		{New(7), New(7), New(7), New(7)},
		{New(1), New(1), Zero, Zero},
		{Max, New(2), New(4), Max.Rsh(1)},
	}
	for i, c := range cases {
		if got := c.x.MulDiv(c.m, c.d); got != c.want {
			t.Errorf("case %d: MulDiv = %s, want %s", i, got, c.want)
		}
	}
}

func TestMulDivMatchesBig(t *testing.T) {
	f := func(x, m, d Int) bool {
		if d.IsZero() {
			return x.MulDiv(m, d).IsZero()
		}
		want := new(big.Int).Mul(x.ToBig(), m.ToBig())
		want.Quo(want, d.ToBig())
		got := x.MulDiv(m, d)
		if want.BitLen() > 256 {
			return got == Max
		}
		return got.ToBig().Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{Values: randValues, MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSatSub(t *testing.T) {
	if got := New(5).SatSub(New(7)); !got.IsZero() {
		t.Errorf("SatSub(5,7) = %s, want 0", got)
	}
	if got := New(7).SatSub(New(5)); got != New(2) {
		t.Errorf("SatSub(7,5) = %s, want 2", got)
	}
}

func TestBitLen(t *testing.T) {
	cases := []struct {
		x    Int
		want int
	}{
		{Zero, 0},
		{One, 1},
		{New(255), 8},
		{Int{0, 1, 0, 0}, 65},
		{Max, 256},
	}
	for _, c := range cases {
		if got := c.x.BitLen(); got != c.want {
			t.Errorf("BitLen(%s) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestFloat64(t *testing.T) {
	if got := New(1_000_000).Float64(); got != 1e6 {
		t.Errorf("Float64 = %g, want 1e6", got)
	}
	one := One.Lsh(128)
	want := 340282366920938463463374607431768211456.0 // 2^128
	if got := one.Float64(); got != want {
		t.Errorf("Float64(2^128) = %g, want %g", got, want)
	}
}

func TestDecimalErrors(t *testing.T) {
	for _, s := range []string{"", "12a", "-5", " 1"} {
		if _, err := FromDecimal(s); err == nil {
			t.Errorf("FromDecimal(%q) succeeded, want error", s)
		}
	}
	// 2^256 exactly must overflow.
	if _, err := FromDecimal(two256.String()); err == nil {
		t.Error("FromDecimal(2^256) succeeded, want overflow")
	}
}

func TestHexErrors(t *testing.T) {
	for _, s := range []string{"", "0x", "0xzz", "0x" + string(make([]byte, 65))} {
		if _, err := FromHex(s); err == nil {
			t.Errorf("FromHex(%q) succeeded, want error", s)
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	x := MustFromDecimal("123456789012345678901234567890123456789")
	y := MustFromDecimal("987654321098765432109876543210987654321")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = x.Add(y)
	}
	_ = x
}

func BenchmarkMul(b *testing.B) {
	x := MustFromDecimal("123456789012345678901234567890123456789")
	y := New(1_000_000_007)
	b.ReportAllocs()
	var z Int
	for i := 0; i < b.N; i++ {
		z = x.Mul(y)
	}
	_ = z
}

func BenchmarkDivMod64(b *testing.B) {
	x := MustFromDecimal("340282366920938463463374607431768211455")
	b.ReportAllocs()
	var q Int
	for i := 0; i < b.N; i++ {
		q = x.Div64(1_000_000_000)
	}
	_ = q
}

// TestDivModKnuthStress drives the multi-limb Knuth path with shapes that
// exercise digit-estimation corner cases (top limbs equal, add-back).
func TestDivModKnuthStress(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	shapes := []func() (Int, Int){
		// Dividend top limb equals divisor top limb.
		func() (Int, Int) {
			top := r.Uint64() | 1<<63
			return Int{r.Uint64(), r.Uint64(), r.Uint64(), top},
				Int{r.Uint64(), r.Uint64(), 0, top}
		},
		// Two-limb divisor, four-limb dividend.
		func() (Int, Int) {
			return Int{r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()},
				Int{r.Uint64(), r.Uint64() | 1, 0, 0}
		},
		// Divisor just below the dividend.
		func() (Int, Int) {
			x := Int{r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()}
			return x, x.Sub(One)
		},
		// Three-limb divisor with low bits clear (normalization shifts).
		func() (Int, Int) {
			return Int{r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()},
				Int{0, r.Uint64(), r.Uint64() | 1<<62, 0}
		},
	}
	for i := 0; i < 20000; i++ {
		x, y := shapes[i%len(shapes)]()
		if y.IsZero() {
			continue
		}
		q, rem := x.DivMod(y)
		wantQ := new(big.Int).Quo(x.ToBig(), y.ToBig())
		wantR := new(big.Int).Rem(x.ToBig(), y.ToBig())
		if q.ToBig().Cmp(wantQ) != 0 || rem.ToBig().Cmp(wantR) != 0 {
			t.Fatalf("DivMod(%s, %s) = (%s, %s), want (%s, %s)",
				x.Hex(), y.Hex(), q, rem, wantQ, wantR)
		}
	}
}

func TestMustConstructorsPanic(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("MustFromBig", func() { MustFromBig(big.NewInt(-1)) })
	assertPanics("MustFromDecimal", func() { MustFromDecimal("nope") })
}

func TestDivModWrappers(t *testing.T) {
	x, y := New(17), New(5)
	if x.Div(y) != New(3) || x.Mod(y) != New(2) {
		t.Error("Div/Mod wrappers wrong")
	}
	if !x.Div(Zero).IsZero() || !x.Mod(Zero).IsZero() {
		t.Error("EVM zero-division semantics violated")
	}
	if New(100).Div64(0) != Zero {
		t.Error("Div64 by zero should be zero")
	}
}

func TestComparisonHelpers(t *testing.T) {
	if !New(1).Lt(New(2)) || !New(2).Gt(New(1)) || !New(2).Eq(New(2)) {
		t.Error("comparison helpers wrong")
	}
	if FromLimbs(1, 2, 3, 4) != (Int{1, 2, 3, 4}) {
		t.Error("FromLimbs wrong")
	}
}
