package rlp

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Known-answer vectors from the Ethereum wiki / yellow paper appendix B.
func TestKnownVectors(t *testing.T) {
	cases := []struct {
		name string
		item Item
		want []byte
	}{
		{"empty string", String(nil), []byte{0x80}},
		{"zero uint", Uint(0), []byte{0x80}},
		{"single low byte", String([]byte{0x0f}), []byte{0x0f}},
		{"single zero byte", String([]byte{0x00}), []byte{0x00}},
		{"byte 0x80", String([]byte{0x80}), []byte{0x81, 0x80}},
		{"dog", Text("dog"), []byte{0x83, 'd', 'o', 'g'}},
		{"cat dog list", List(Text("cat"), Text("dog")),
			[]byte{0xc8, 0x83, 'c', 'a', 't', 0x83, 'd', 'o', 'g'}},
		{"empty list", List(), []byte{0xc0}},
		{"uint 15", Uint(15), []byte{0x0f}},
		{"uint 1024", Uint(1024), []byte{0x82, 0x04, 0x00}},
		{"set of three", List(List(), List(List()), List(List(), List(List()))),
			[]byte{0xc7, 0xc0, 0xc1, 0xc0, 0xc3, 0xc0, 0xc1, 0xc0}},
		{"lorem 56 bytes", Text("Lorem ipsum dolor sit amet, consectetur adipisicing elit"),
			append([]byte{0xb8, 0x38}, []byte("Lorem ipsum dolor sit amet, consectetur adipisicing elit")...)},
	}
	for _, c := range cases {
		got := Encode(c.item)
		if !bytes.Equal(got, c.want) {
			t.Errorf("%s: Encode = %x, want %x", c.name, got, c.want)
		}
		back, err := Decode(got)
		if err != nil {
			t.Errorf("%s: Decode: %v", c.name, err)
			continue
		}
		if !itemsEqual(back, c.item) {
			t.Errorf("%s: round trip mismatch: %#v vs %#v", c.name, back, c.item)
		}
	}
}

func itemsEqual(a, b Item) bool {
	if a.kind != b.kind {
		return false
	}
	if a.kind == KindString {
		return bytes.Equal(a.str, b.str)
	}
	if len(a.list) != len(b.list) {
		return false
	}
	for i := range a.list {
		if !itemsEqual(a.list[i], b.list[i]) {
			return false
		}
	}
	return true
}

func randItem(r *rand.Rand, depth int) Item {
	if depth <= 0 || r.Intn(3) > 0 {
		n := r.Intn(70)
		b := make([]byte, n)
		r.Read(b)
		return String(b)
	}
	n := r.Intn(5)
	children := make([]Item, n)
	for i := range children {
		children[i] = randItem(r, depth-1)
	}
	return List(children...)
}

func TestRoundTripQuick(t *testing.T) {
	f := func(it Item) bool {
		enc := Encode(it)
		back, err := Decode(enc)
		if err != nil {
			return false
		}
		return itemsEqual(it, back) && bytes.Equal(Encode(back), enc)
	}
	vals := func(args []reflect.Value, r *rand.Rand) {
		args[0] = reflect.ValueOf(randItem(r, 4))
	}
	if err := quick.Check(f, &quick.Config{Values: vals, MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUintRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool {
		it, err := Decode(Encode(Uint(v)))
		if err != nil {
			return false
		}
		got, err := it.AsUint()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodedLenMatches(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		it := randItem(r, 4)
		if got, want := encodedLen(it), len(Encode(it)); got != want {
			t.Fatalf("encodedLen = %d, want %d", got, want)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
	}{
		{"empty input", nil},
		{"truncated short string", []byte{0x83, 'd', 'o'}},
		{"truncated long string header", []byte{0xb8}},
		{"truncated list", []byte{0xc8, 0x83, 'c'}},
		{"trailing bytes", []byte{0x0f, 0x0f}},
		{"non-canonical single byte", []byte{0x81, 0x01}},
		{"non-canonical long string", []byte{0xb8, 0x01, 0xff}},
		{"non-canonical length leading zero", []byte{0xb9, 0x00, 0x40}},
		{"non-canonical long list", []byte{0xf8, 0x01, 0x0f}},
		{"oversized length", []byte{0xbf, 1, 2, 3, 4, 5, 6, 7, 8}},
	}
	for _, c := range cases {
		if _, err := Decode(c.in); err == nil {
			t.Errorf("%s: Decode(%x) succeeded, want error", c.name, c.in)
		}
	}
}

func TestKindAccessors(t *testing.T) {
	s := Text("hi")
	if _, err := s.Items(); err != ErrExpectedList {
		t.Errorf("Items on string: err = %v, want ErrExpectedList", err)
	}
	l := List(s)
	if _, err := l.Bytes(); err != ErrExpectedString {
		t.Errorf("Bytes on list: err = %v, want ErrExpectedString", err)
	}
	if l.Len() != 1 || s.Len() != 2 {
		t.Errorf("Len mismatch: list %d string %d", l.Len(), s.Len())
	}
	items, err := l.Items()
	if err != nil || len(items) != 1 {
		t.Fatalf("Items: %v, %v", items, err)
	}
	b, err := items[0].Bytes()
	if err != nil || string(b) != "hi" {
		t.Errorf("Bytes = %q, %v", b, err)
	}
}

func TestAsUintErrors(t *testing.T) {
	if _, err := String([]byte{0x00, 0x01}).AsUint(); err == nil {
		t.Error("AsUint accepted leading zero")
	}
	if _, err := String(make([]byte, 9)).AsUint(); err == nil {
		t.Error("AsUint accepted 9-byte integer")
	}
	if _, err := List().AsUint(); err == nil {
		t.Error("AsUint accepted a list")
	}
}

func TestLongList(t *testing.T) {
	var children []Item
	for i := 0; i < 60; i++ {
		children = append(children, Uint(uint64(i)))
	}
	it := List(children...)
	enc := Encode(it)
	if enc[0] < 0xf8 {
		t.Fatalf("expected long-list prefix, got %#x", enc[0])
	}
	back, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Items()
	if err != nil || len(got) != 60 {
		t.Fatalf("Items: n=%d err=%v", len(got), err)
	}
	for i, child := range got {
		v, err := child.AsUint()
		if err != nil || v != uint64(i) {
			t.Fatalf("child %d = %d, %v", i, v, err)
		}
	}
}

func BenchmarkEncodeHeaderLike(b *testing.B) {
	it := List(
		String(make([]byte, 32)), String(make([]byte, 20)), String(make([]byte, 32)),
		Uint(15537394), Uint(30_000_000), Uint(14_356_221), Uint(1663224162),
		String(make([]byte, 32)), Uint(12_000_000_000),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(it)
	}
}

func BenchmarkDecodeHeaderLike(b *testing.B) {
	enc := Encode(List(
		String(make([]byte, 32)), String(make([]byte, 20)), String(make([]byte, 32)),
		Uint(15537394), Uint(30_000_000), Uint(14_356_221), Uint(1663224162),
		String(make([]byte, 32)), Uint(12_000_000_000),
	))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
