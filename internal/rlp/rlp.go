// Package rlp implements Recursive Length Prefix serialization, Ethereum's
// canonical wire encoding for transactions and block headers.
//
// RLP knows exactly two kinds of items: byte strings and lists of items.
// This package exposes that model directly through the Item type rather than
// through reflection: callers assemble Items and encode them, or decode bytes
// back into an Item tree. The explicit model keeps encoding deterministic —
// a requirement for hashing — and keeps the package free of reflect.
//
// Reference: Ethereum yellow paper, appendix B.
package rlp

import (
	"errors"
	"fmt"
)

// Kind discriminates the two RLP item kinds.
type Kind uint8

const (
	// KindString is a byte-string item (possibly empty).
	KindString Kind = iota
	// KindList is a list item (possibly empty).
	KindList
)

// Item is a node in an RLP tree: either a byte string or a list of items.
type Item struct {
	kind Kind
	str  []byte
	list []Item
}

// Decoding errors.
var (
	ErrTrailingBytes  = errors.New("rlp: trailing bytes after item")
	ErrTruncated      = errors.New("rlp: input truncated")
	ErrNonCanonical   = errors.New("rlp: non-canonical encoding")
	ErrExpectedString = errors.New("rlp: expected string item")
	ErrExpectedList   = errors.New("rlp: expected list item")
)

// String returns a byte-string item. The slice is not copied; callers must
// not mutate it afterwards.
func String(b []byte) Item {
	return Item{kind: KindString, str: b}
}

// Text returns a byte-string item holding s.
func Text(s string) Item {
	return Item{kind: KindString, str: []byte(s)}
}

// Uint returns the canonical RLP integer item for v: big-endian with no
// leading zero bytes, the empty string for zero.
func Uint(v uint64) Item {
	if v == 0 {
		return Item{kind: KindString}
	}
	var buf [8]byte
	n := 0
	for shift := 56; shift >= 0; shift -= 8 {
		b := byte(v >> shift)
		if n == 0 && b == 0 {
			continue
		}
		buf[n] = b
		n++
	}
	return Item{kind: KindString, str: append([]byte(nil), buf[:n]...)}
}

// List returns a list item over the given children.
func List(items ...Item) Item {
	if items == nil {
		items = []Item{}
	}
	return Item{kind: KindList, list: items}
}

// Kind reports whether the item is a string or a list.
func (it Item) Kind() Kind { return it.kind }

// Bytes returns the payload of a string item.
func (it Item) Bytes() ([]byte, error) {
	if it.kind != KindString {
		return nil, ErrExpectedString
	}
	return it.str, nil
}

// AsUint decodes a canonical RLP integer from a string item.
func (it Item) AsUint() (uint64, error) {
	b, err := it.Bytes()
	if err != nil {
		return 0, err
	}
	if len(b) > 8 {
		return 0, fmt.Errorf("rlp: integer larger than 64 bits (%d bytes)", len(b))
	}
	if len(b) > 0 && b[0] == 0 {
		return 0, ErrNonCanonical
	}
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return v, nil
}

// Items returns the children of a list item.
func (it Item) Items() ([]Item, error) {
	if it.kind != KindList {
		return nil, ErrExpectedList
	}
	return it.list, nil
}

// Len returns the number of children for a list, or the byte length for a
// string.
func (it Item) Len() int {
	if it.kind == KindList {
		return len(it.list)
	}
	return len(it.str)
}

// Encode renders the item in canonical RLP.
func Encode(it Item) []byte {
	out := make([]byte, 0, encodedLen(it))
	return appendItem(out, it)
}

// encodedLen computes the exact encoded size so Encode allocates once.
func encodedLen(it Item) int {
	if it.kind == KindString {
		n := len(it.str)
		switch {
		case n == 1 && it.str[0] < 0x80:
			return 1
		case n <= 55:
			return 1 + n
		default:
			return 1 + lenOfLen(n) + n
		}
	}
	payload := 0
	for _, child := range it.list {
		payload += encodedLen(child)
	}
	if payload <= 55 {
		return 1 + payload
	}
	return 1 + lenOfLen(payload) + payload
}

func lenOfLen(n int) int {
	size := 0
	for n > 0 {
		size++
		n >>= 8
	}
	return size
}

func appendLength(out []byte, n int) []byte {
	size := lenOfLen(n)
	for i := size - 1; i >= 0; i-- {
		out = append(out, byte(n>>(8*i)))
	}
	return out
}

func appendItem(out []byte, it Item) []byte {
	if it.kind == KindString {
		n := len(it.str)
		switch {
		case n == 1 && it.str[0] < 0x80:
			return append(out, it.str[0])
		case n <= 55:
			out = append(out, byte(0x80+n))
			return append(out, it.str...)
		default:
			out = append(out, byte(0xb7+lenOfLen(n)))
			out = appendLength(out, n)
			return append(out, it.str...)
		}
	}
	payload := 0
	for _, child := range it.list {
		payload += encodedLen(child)
	}
	if payload <= 55 {
		out = append(out, byte(0xc0+payload))
	} else {
		out = append(out, byte(0xf7+lenOfLen(payload)))
		out = appendLength(out, payload)
	}
	for _, child := range it.list {
		out = appendItem(out, child)
	}
	return out
}

// Decode parses exactly one item from data, rejecting trailing bytes.
func Decode(data []byte) (Item, error) {
	it, rest, err := decodeItem(data)
	if err != nil {
		return Item{}, err
	}
	if len(rest) != 0 {
		return Item{}, ErrTrailingBytes
	}
	return it, nil
}

func decodeItem(data []byte) (Item, []byte, error) {
	if len(data) == 0 {
		return Item{}, nil, ErrTruncated
	}
	prefix := data[0]
	switch {
	case prefix < 0x80:
		// Single byte, its own encoding.
		return Item{kind: KindString, str: data[:1]}, data[1:], nil

	case prefix <= 0xb7:
		// Short string.
		n := int(prefix - 0x80)
		if len(data) < 1+n {
			return Item{}, nil, ErrTruncated
		}
		payload := data[1 : 1+n]
		if n == 1 && payload[0] < 0x80 {
			return Item{}, nil, ErrNonCanonical
		}
		return Item{kind: KindString, str: payload}, data[1+n:], nil

	case prefix <= 0xbf:
		// Long string.
		n, rest, err := decodeLength(data[1:], int(prefix-0xb7))
		if err != nil {
			return Item{}, nil, err
		}
		if n <= 55 {
			return Item{}, nil, ErrNonCanonical
		}
		if len(rest) < n {
			return Item{}, nil, ErrTruncated
		}
		return Item{kind: KindString, str: rest[:n]}, rest[n:], nil

	case prefix <= 0xf7:
		// Short list.
		n := int(prefix - 0xc0)
		if len(data) < 1+n {
			return Item{}, nil, ErrTruncated
		}
		children, err := decodeList(data[1 : 1+n])
		if err != nil {
			return Item{}, nil, err
		}
		return Item{kind: KindList, list: children}, data[1+n:], nil

	default:
		// Long list.
		n, rest, err := decodeLength(data[1:], int(prefix-0xf7))
		if err != nil {
			return Item{}, nil, err
		}
		if n <= 55 {
			return Item{}, nil, ErrNonCanonical
		}
		if len(rest) < n {
			return Item{}, nil, ErrTruncated
		}
		children, err := decodeList(rest[:n])
		if err != nil {
			return Item{}, nil, err
		}
		return Item{kind: KindList, list: children}, rest[n:], nil
	}
}

// decodeLength reads a size-byte big-endian length, enforcing the canonical
// form (no leading zero, minimal width).
func decodeLength(data []byte, size int) (int, []byte, error) {
	if len(data) < size {
		return 0, nil, ErrTruncated
	}
	if size == 0 || data[0] == 0 {
		return 0, nil, ErrNonCanonical
	}
	if size > 4 {
		return 0, nil, fmt.Errorf("rlp: length of %d bytes exceeds supported size", size)
	}
	n := 0
	for i := 0; i < size; i++ {
		n = n<<8 | int(data[i])
	}
	return n, data[size:], nil
}

func decodeList(payload []byte) ([]Item, error) {
	items := []Item{}
	for len(payload) > 0 {
		var it Item
		var err error
		it, payload, err = decodeItem(payload)
		if err != nil {
			return nil, err
		}
		items = append(items, it)
	}
	return items, nil
}
