package report

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/ethpbs/pbslab/internal/core"
	"github.com/ethpbs/pbslab/internal/sim"
)

func TestRenderStepsPanicIsolation(t *testing.T) {
	steps := []step{
		{"ok_one.csv", func(w io.Writer) { fmt.Fprintln(w, "a") }},
		{"bad.csv", func(w io.Writer) { panic("renderer bug") }},
		{"ok_two.csv", func(w io.Writer) { fmt.Fprintln(w, "b") }},
	}
	arts := renderSteps(context.Background(), steps, 2)
	if arts[0].Err != nil || arts[2].Err != nil {
		t.Fatalf("healthy renderers poisoned: %v / %v", arts[0].Err, arts[2].Err)
	}
	if arts[1].Err == nil {
		t.Fatal("panicking renderer reported no error")
	}
	msg := arts[1].Err.Error()
	if !strings.Contains(msg, "bad.csv") || !strings.Contains(msg, "renderer bug") {
		t.Errorf("panic error %q does not name the artifact and cause", msg)
	}
	if !strings.Contains(msg, "goroutine") {
		t.Errorf("panic error carries no stack trace: %q", msg)
	}
}

func TestRenderStepsCancellationSkipsRemaining(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	steps := []step{
		{"first.csv", func(w io.Writer) { fmt.Fprintln(w, "data"); cancel() }},
		{"second.csv", func(w io.Writer) { fmt.Fprintln(w, "data") }},
		{"third.csv", func(w io.Writer) { fmt.Fprintln(w, "data") }},
	}
	// One worker makes the schedule deterministic: the first step completes
	// and cancels, the rest are skipped with ctx's error.
	arts := renderSteps(ctx, steps, 1)
	if arts[0].Err != nil || len(arts[0].Data) == 0 {
		t.Fatalf("completed artifact lost: %v", arts[0].Err)
	}
	for _, a := range arts[1:] {
		if !errors.Is(a.Err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", a.Name, a.Err)
		}
		if len(a.Data) != 0 {
			t.Errorf("%s rendered after cancellation", a.Name)
		}
	}
}

// TestPartialFlushVerifiesClean pins the durability invariant: artifacts
// completed before a cancellation are flushed under a manifest that covers
// exactly them, so the partial directory is incomplete but never corrupt.
func TestPartialFlushVerifiesClean(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	steps := []step{
		{"done_a.csv", func(w io.Writer) { fmt.Fprintln(w, "a") }},
		{"done_b.csv", func(w io.Writer) { fmt.Fprintln(w, "b"); cancel() }},
		{"never.csv", func(w io.Writer) { fmt.Fprintln(w, "c") }},
	}
	arts := renderSteps(ctx, steps, 1)
	var done []Artifact
	for _, a := range arts {
		if a.Err == nil {
			done = append(done, a)
		}
	}
	if len(done) != 2 {
		t.Fatalf("%d artifacts completed, want 2", len(done))
	}
	dir := t.TempDir()
	if err := writeArtifacts(dir, done); err != nil {
		t.Fatal(err)
	}
	problems, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("partial directory fails verification: %v", problems)
	}
	if _, err := os.Stat(filepath.Join(dir, "never.csv")); !os.IsNotExist(err) {
		t.Error("cancelled artifact reached disk")
	}
}

// TestRenderCancelledLeaksNoGoroutines: a cancelled render returns
// promptly and leaves no pool workers behind.
func TestRenderCancelledLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	steps := make([]step, 64)
	for i := range steps {
		name := fmt.Sprintf("s%02d.csv", i)
		steps[i] = step{name, func(w io.Writer) { fmt.Fprintln(w, "x") }}
	}
	arts := renderSteps(ctx, steps, 8)
	for _, a := range arts {
		if !errors.Is(a.Err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", a.Name, a.Err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines: %d before, %d after cancelled render", before, now)
	}
}

// TestKillAndResumeByteIdenticalArtifacts is the acceptance golden: for
// three seeds, a run killed mid-simulation and resumed from its checkpoint
// must write byte-identical figures AND manifest to an uninterrupted run.
func TestKillAndResumeByteIdenticalArtifacts(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := sim.DefaultScenario()
			sc.Seed = seed
			sc.End = sc.Start.Add(4 * 24 * time.Hour)
			sc.BlocksPerDay = 12
			sc.Validators = 200
			sc.Demand.Users = 120
			sc.Demand.TxPerBlock = sim.Flat(30)
			sc.SmallBuilderCount = 20

			writeRun := func(res *sim.Result) string {
				t.Helper()
				a := core.New(res.Dataset, core.WithBuilderLabels(res.World.BuilderLabels()))
				dir := t.TempDir()
				if err := WriteAll(a, dir); err != nil {
					t.Fatal(err)
				}
				return dir
			}

			base, err := sim.Run(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			baseDir := writeRun(base)

			// Kill at the day-2 boundary, then resume from the checkpoint.
			ckpt := t.TempDir()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			_, err = sim.RunOpts(ctx, sc, sim.RunOptions{
				CheckpointDir: ckpt,
				OnDay: func(day int) {
					if day >= 2 {
						cancel()
					}
				},
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
			}
			resumed, err := sim.RunOpts(context.Background(), sc, sim.RunOptions{
				CheckpointDir: ckpt, Resume: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			resumedDir := writeRun(resumed)

			compareDirsByteIdentical(t, baseDir, resumedDir)
		})
	}
}

// compareDirsByteIdentical asserts both directories hold the same file set
// with the same bytes — including manifest.json.
func compareDirsByteIdentical(t *testing.T, a, b string) {
	t.Helper()
	entsA, err := os.ReadDir(a)
	if err != nil {
		t.Fatal(err)
	}
	entsB, err := os.ReadDir(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(entsA) != len(entsB) {
		t.Fatalf("file counts differ: %d vs %d", len(entsA), len(entsB))
	}
	for _, ent := range entsA {
		da, err := os.ReadFile(filepath.Join(a, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		db, err := os.ReadFile(filepath.Join(b, ent.Name()))
		if err != nil {
			t.Fatalf("%s present in baseline only: %v", ent.Name(), err)
		}
		if !bytes.Equal(da, db) {
			t.Errorf("%s differs between uninterrupted and resumed run", ent.Name())
		}
	}
}
