package report

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/ethpbs/pbslab/internal/faults"
)

// writeSyntheticDir lands a small artifact set plus manifest in a fresh dir.
func writeSyntheticDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	arts := []Artifact{
		{Name: "fig01_alpha.csv", Data: bytes.Repeat([]byte("day,value\n1,2\n"), 8)},
		{Name: "fig02_beta.csv", Data: bytes.Repeat([]byte("day,value\n3,4\n"), 16)},
		{Name: "fig03_gamma.csv", Data: bytes.Repeat([]byte("day,value\n5,6\n"), 32)},
		{Name: "tables.txt", Data: []byte("# tables\nrows\n")},
	}
	if err := writeArtifacts(dir, arts); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestVerifyDirCleanPasses(t *testing.T) {
	dir := writeSyntheticDir(t)
	problems, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean dir reported problems: %v", problems)
	}
}

func TestVerifyDirDetectsEveryInjectedCorruption(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := writeSyntheticDir(t)
			injected, err := faults.CorruptDir(seed, dir)
			if err != nil {
				t.Fatal(err)
			}
			problems, err := VerifyDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			byName := map[string][]Problem{}
			for _, p := range problems {
				byName[p.Name] = append(byName[p.Name], p)
			}
			for _, c := range injected {
				match := false
				for _, p := range byName[c.Target] {
					if p.Kind == c.Kind {
						match = true
					}
				}
				if !match {
					t.Errorf("injected %s; problems for %s: %v", c, c.Target, byName[c.Target])
				}
			}
		})
	}
}

func TestVerifyDirMissingManifest(t *testing.T) {
	if _, err := VerifyDir(t.TempDir()); err == nil {
		t.Fatal("expected error for directory without a manifest")
	}
}

func TestVerifyDirFlagsTempDebrisDistinctly(t *testing.T) {
	dir := writeSyntheticDir(t)
	if err := os.WriteFile(filepath.Join(dir, ".tmp-fig01_alpha.csv123"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || problems[0].Kind != ProblemStale {
		t.Fatalf("problems = %v, want one stale finding", problems)
	}
	if problems[0].Detail != "temp debris from an interrupted write" {
		t.Errorf("detail = %q", problems[0].Detail)
	}
}

// The three directory shapes a serving daemon must classify cleanly rather
// than treat as a generic read failure: empty, manifest-only, and
// temp-debris-only (the wreckage of a writer killed before its first
// rename landed).

func TestVerifyDirEmptyClassifiesAsNoManifest(t *testing.T) {
	_, err := VerifyDir(t.TempDir())
	if !errors.Is(err, ErrNoManifest) {
		t.Fatalf("err = %v, want ErrNoManifest", err)
	}
}

func TestVerifyDirManifestOnlyIsClean(t *testing.T) {
	// A manifest certifying zero artifacts is a legal (if useless)
	// directory: nothing promised, nothing missing, nothing stale.
	dir := t.TempDir()
	if err := writeArtifacts(dir, nil); err != nil {
		t.Fatal(err)
	}
	problems, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("manifest-only dir reported problems: %v", problems)
	}
}

func TestVerifyDirTempDebrisOnlyClassifiesAsNoManifest(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{".tmp-fig01.csv-123", ".tmp-manifest.json-9"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, err := VerifyDir(dir)
	if !errors.Is(err, ErrNoManifest) {
		t.Fatalf("err = %v, want ErrNoManifest (unverifiable, not corrupt)", err)
	}
}

// TestVerifyDirClassifiesSubdirectoryFiles is the regression test for the
// chunked-dataset layout: files under dataset/ (or any subdirectory) are
// held to exactly the same manifest rules as top-level artifacts —
// slash-joined names verify clean, a corrupted segment is corrupt, a
// deleted one missing, and an unlisted one (or temp debris) stale.
func TestVerifyDirClassifiesSubdirectoryFiles(t *testing.T) {
	newDir := func(t *testing.T) string {
		dir := t.TempDir()
		arts := []Artifact{
			{Name: "fig01_alpha.csv", Data: []byte("day,value\n1,2\n")},
			{Name: "dataset/index.json", Data: []byte(`{"version":1}` + "\n")},
			{Name: "dataset/day-000000.seg", Data: bytes.Repeat([]byte{0xAB}, 64)},
			{Name: "dataset/day-000001.seg", Data: bytes.Repeat([]byte{0xCD}, 64)},
		}
		if err := writeArtifacts(dir, arts); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("clean", func(t *testing.T) {
		problems, err := VerifyDir(newDir(t))
		if err != nil {
			t.Fatal(err)
		}
		if len(problems) != 0 {
			t.Fatalf("clean chunked dir reported problems: %v", problems)
		}
	})

	t.Run("corrupt segment", func(t *testing.T) {
		dir := newDir(t)
		path := filepath.Join(dir, "dataset", "day-000000.seg")
		if err := os.WriteFile(path, bytes.Repeat([]byte{0xEE}, 64), 0o644); err != nil {
			t.Fatal(err)
		}
		problems, err := VerifyDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(problems) != 1 || problems[0].Kind != ProblemCorrupt || problems[0].Name != "dataset/day-000000.seg" {
			t.Fatalf("problems = %v, want one corrupt finding for dataset/day-000000.seg", problems)
		}
	})

	t.Run("missing segment", func(t *testing.T) {
		dir := newDir(t)
		if err := os.Remove(filepath.Join(dir, "dataset", "day-000001.seg")); err != nil {
			t.Fatal(err)
		}
		problems, err := VerifyDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(problems) != 1 || problems[0].Kind != ProblemMissing || problems[0].Name != "dataset/day-000001.seg" {
			t.Fatalf("problems = %v, want one missing finding for dataset/day-000001.seg", problems)
		}
	})

	t.Run("stale subdirectory file", func(t *testing.T) {
		dir := newDir(t)
		if err := os.WriteFile(filepath.Join(dir, "dataset", "day-000002.seg"), []byte("orphan"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "dataset", ".tmp-day-000000.seg99"), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		problems, err := VerifyDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(problems) != 2 {
			t.Fatalf("problems = %v, want two stale findings", problems)
		}
		for _, p := range problems {
			if p.Kind != ProblemStale {
				t.Errorf("%s: kind %s, want stale", p.Name, p.Kind)
			}
		}
		byName := map[string]Problem{}
		for _, p := range problems {
			byName[p.Name] = p
		}
		if p, ok := byName["dataset/.tmp-day-000000.seg99"]; !ok || p.Detail != "temp debris from an interrupted write" {
			t.Errorf("temp debris in subdirectory not flagged distinctly: %v", problems)
		}
		if _, ok := byName["dataset/day-000002.seg"]; !ok {
			t.Errorf("orphan segment not flagged stale: %v", problems)
		}
	})
}

func TestWriteAllExtraCoversExtraArtifacts(t *testing.T) {
	dir := t.TempDir()
	arts := []Artifact{
		{Name: "fig01_alpha.csv", Data: []byte("day,value\n1,2\n")},
		{Name: "extra.bin", Data: []byte{0x01, 0x02, 0x03}},
	}
	if err := writeArtifacts(dir, arts); err != nil {
		t.Fatal(err)
	}
	problems, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("extra artifact not covered by manifest: %v", problems)
	}
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Artifacts) != 2 {
		t.Fatalf("manifest lists %d artifacts, want 2", len(m.Artifacts))
	}
}
