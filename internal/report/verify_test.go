package report

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/ethpbs/pbslab/internal/faults"
)

// writeSyntheticDir lands a small artifact set plus manifest in a fresh dir.
func writeSyntheticDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	arts := []Artifact{
		{Name: "fig01_alpha.csv", Data: bytes.Repeat([]byte("day,value\n1,2\n"), 8)},
		{Name: "fig02_beta.csv", Data: bytes.Repeat([]byte("day,value\n3,4\n"), 16)},
		{Name: "fig03_gamma.csv", Data: bytes.Repeat([]byte("day,value\n5,6\n"), 32)},
		{Name: "tables.txt", Data: []byte("# tables\nrows\n")},
	}
	if err := writeArtifacts(dir, arts); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestVerifyDirCleanPasses(t *testing.T) {
	dir := writeSyntheticDir(t)
	problems, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean dir reported problems: %v", problems)
	}
}

func TestVerifyDirDetectsEveryInjectedCorruption(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := writeSyntheticDir(t)
			injected, err := faults.CorruptDir(seed, dir)
			if err != nil {
				t.Fatal(err)
			}
			problems, err := VerifyDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			byName := map[string][]Problem{}
			for _, p := range problems {
				byName[p.Name] = append(byName[p.Name], p)
			}
			for _, c := range injected {
				match := false
				for _, p := range byName[c.Target] {
					if p.Kind == c.Kind {
						match = true
					}
				}
				if !match {
					t.Errorf("injected %s; problems for %s: %v", c, c.Target, byName[c.Target])
				}
			}
		})
	}
}

func TestVerifyDirMissingManifest(t *testing.T) {
	if _, err := VerifyDir(t.TempDir()); err == nil {
		t.Fatal("expected error for directory without a manifest")
	}
}

func TestVerifyDirFlagsTempDebrisDistinctly(t *testing.T) {
	dir := writeSyntheticDir(t)
	if err := os.WriteFile(filepath.Join(dir, ".tmp-fig01_alpha.csv123"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || problems[0].Kind != ProblemStale {
		t.Fatalf("problems = %v, want one stale finding", problems)
	}
	if problems[0].Detail != "temp debris from an interrupted write" {
		t.Errorf("detail = %q", problems[0].Detail)
	}
}

// The three directory shapes a serving daemon must classify cleanly rather
// than treat as a generic read failure: empty, manifest-only, and
// temp-debris-only (the wreckage of a writer killed before its first
// rename landed).

func TestVerifyDirEmptyClassifiesAsNoManifest(t *testing.T) {
	_, err := VerifyDir(t.TempDir())
	if !errors.Is(err, ErrNoManifest) {
		t.Fatalf("err = %v, want ErrNoManifest", err)
	}
}

func TestVerifyDirManifestOnlyIsClean(t *testing.T) {
	// A manifest certifying zero artifacts is a legal (if useless)
	// directory: nothing promised, nothing missing, nothing stale.
	dir := t.TempDir()
	if err := writeArtifacts(dir, nil); err != nil {
		t.Fatal(err)
	}
	problems, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("manifest-only dir reported problems: %v", problems)
	}
}

func TestVerifyDirTempDebrisOnlyClassifiesAsNoManifest(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{".tmp-fig01.csv-123", ".tmp-manifest.json-9"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, err := VerifyDir(dir)
	if !errors.Is(err, ErrNoManifest) {
		t.Fatalf("err = %v, want ErrNoManifest (unverifiable, not corrupt)", err)
	}
}

func TestWriteAllExtraCoversExtraArtifacts(t *testing.T) {
	dir := t.TempDir()
	arts := []Artifact{
		{Name: "fig01_alpha.csv", Data: []byte("day,value\n1,2\n")},
		{Name: "extra.bin", Data: []byte{0x01, 0x02, 0x03}},
	}
	if err := writeArtifacts(dir, arts); err != nil {
		t.Fatal(err)
	}
	problems, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("extra artifact not covered by manifest: %v", problems)
	}
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Artifacts) != 2 {
		t.Fatalf("manifest lists %d artifacts, want 2", len(m.Artifacts))
	}
}
