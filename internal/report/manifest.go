// Artifact durability: every report file is written atomically and
// recorded in a manifest of sizes and SHA-256 digests, so a consumer (or
// `pbslab -verify`) can prove a directory is exactly what some run wrote —
// no torn files, no stale leftovers from an earlier scenario.
package report

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"github.com/ethpbs/pbslab/internal/atomicio"
)

// ErrNoManifest marks a directory with no manifest at all — an empty dir, a
// dir holding only temp debris, or one that predates manifests. Callers can
// classify it (errors.Is) instead of treating it like a read failure: such a
// directory is unverifiable, not provably corrupt.
var ErrNoManifest = errors.New("report: no manifest")

// ManifestName is the manifest file written beside the artifacts.
const ManifestName = "manifest.json"

// ManifestEntry describes one artifact file.
type ManifestEntry struct {
	Name   string `json:"name"`
	Size   int64  `json:"size"`
	SHA256 string `json:"sha256"`
}

// Manifest is the artifact inventory of an output directory. It carries no
// timestamps: the same analysis always produces byte-identical artifacts
// and therefore a byte-identical manifest, which is what lets the
// kill-and-resume golden test compare whole directories.
type Manifest struct {
	Artifacts []ManifestEntry `json:"artifacts"`
}

// buildManifest computes the inventory for a set of artifacts, sorted by
// name for deterministic encoding.
func buildManifest(arts []Artifact) Manifest {
	m := Manifest{Artifacts: make([]ManifestEntry, 0, len(arts))}
	for _, a := range arts {
		sum := sha256.Sum256(a.Data)
		m.Artifacts = append(m.Artifacts, ManifestEntry{
			Name:   a.Name,
			Size:   int64(len(a.Data)),
			SHA256: hex.EncodeToString(sum[:]),
		})
	}
	sort.Slice(m.Artifacts, func(i, j int) bool { return m.Artifacts[i].Name < m.Artifacts[j].Name })
	return m
}

// writeArtifacts lands every artifact and the covering manifest in dir,
// each file via atomic temp + rename. The manifest goes last: its presence
// certifies the files it lists. Artifact names may contain slashes (the
// chunked dataset lives under dataset/); parent directories are created as
// needed.
func writeArtifacts(dir string, arts []Artifact) error {
	for _, art := range arts {
		path := filepath.Join(dir, filepath.FromSlash(art.Name))
		if parent := filepath.Dir(path); parent != dir {
			if err := os.MkdirAll(parent, 0o755); err != nil {
				return fmt.Errorf("report: %s: %w", art.Name, err)
			}
		}
		if err := atomicio.WriteFile(path, art.Data, 0o644); err != nil {
			return fmt.Errorf("report: %s: %w", art.Name, err)
		}
	}
	data, err := json.MarshalIndent(buildManifest(arts), "", "  ")
	if err != nil {
		return fmt.Errorf("report: manifest: %w", err)
	}
	data = append(data, '\n')
	if err := atomicio.WriteFile(filepath.Join(dir, ManifestName), data, 0o644); err != nil {
		return fmt.Errorf("report: manifest: %w", err)
	}
	return nil
}

// ReadManifest loads and decodes dir's manifest.
func ReadManifest(dir string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return m, fmt.Errorf("%w in %s", ErrNoManifest, dir)
		}
		return m, fmt.Errorf("report: read manifest: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("report: parse manifest: %w", err)
	}
	return m, nil
}

// Problem kinds reported by VerifyDir.
const (
	// ProblemMissing: the manifest lists the file but it is absent.
	ProblemMissing = "missing"
	// ProblemCorrupt: the file's size or SHA-256 disagrees with the
	// manifest — a torn write, truncation, or bit rot.
	ProblemCorrupt = "corrupt"
	// ProblemStale: the file sits in the directory but the manifest does
	// not cover it — debris from an interrupted write or an older run.
	ProblemStale = "stale"
)

// Problem is one verification finding.
type Problem struct {
	Name   string
	Kind   string
	Detail string
}

func (p Problem) String() string {
	return fmt.Sprintf("%s: %s (%s)", p.Name, p.Kind, p.Detail)
}

// VerifyDir checks an output directory against its manifest and returns
// every discrepancy: listed-but-missing files, size or checksum mismatches,
// and unlisted (stale) files including temp debris. An empty slice means
// the directory is exactly what the manifest certifies.
func VerifyDir(dir string) ([]Problem, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	var problems []Problem
	listed := make(map[string]bool, len(m.Artifacts))
	for _, e := range m.Artifacts {
		listed[e.Name] = true
		data, err := os.ReadFile(filepath.Join(dir, filepath.FromSlash(e.Name)))
		if err != nil {
			if os.IsNotExist(err) {
				problems = append(problems, Problem{Name: e.Name, Kind: ProblemMissing, Detail: "listed in manifest, not on disk"})
			} else {
				problems = append(problems, Problem{Name: e.Name, Kind: ProblemCorrupt, Detail: err.Error()})
			}
			continue
		}
		if int64(len(data)) != e.Size {
			problems = append(problems, Problem{Name: e.Name, Kind: ProblemCorrupt,
				Detail: fmt.Sprintf("size %d, manifest says %d", len(data), e.Size)})
			continue
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != e.SHA256 {
			problems = append(problems, Problem{Name: e.Name, Kind: ProblemCorrupt,
				Detail: fmt.Sprintf("sha256 %.12s.., manifest says %.12s..", got, e.SHA256)})
		}
	}
	// The stale sweep walks subdirectories too: a chunked dataset's
	// segments live under dataset/ with slash-joined manifest names, and a
	// file in a subdirectory is held to exactly the same rules as one at
	// the top level.
	err = filepath.WalkDir(dir, func(path string, ent fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if ent.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if name == ManifestName || listed[name] {
			return nil
		}
		detail := "not covered by manifest"
		if atomicio.IsTemp(ent.Name()) {
			detail = "temp debris from an interrupted write"
		}
		problems = append(problems, Problem{Name: name, Kind: ProblemStale, Detail: detail})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("report: verify: %w", err)
	}
	sort.Slice(problems, func(i, j int) bool {
		if problems[i].Name != problems[j].Name {
			return problems[i].Name < problems[j].Name
		}
		return problems[i].Kind < problems[j].Kind
	})
	return problems, nil
}
