package report

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ethpbs/pbslab/internal/core"
	"github.com/ethpbs/pbslab/internal/sim"
)

func smallAnalysis(t *testing.T) *core.Analysis {
	t.Helper()
	sc := sim.DefaultScenario()
	sc.End = sc.Start.Add(4 * 24 * time.Hour)
	sc.BlocksPerDay = 12
	sc.Demand.Users = 100
	sc.Demand.TxPerBlock = sim.Flat(25)
	sc.SmallBuilderCount = 10
	res, err := sim.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	return core.New(res.Dataset, core.WithBuilderLabels(res.World.BuilderLabels()))
}

func TestPrintAllSections(t *testing.T) {
	a := smallAnalysis(t)
	var sb strings.Builder
	PrintAll(&sb, a)
	out := sb.String()
	for _, want := range []string{
		"analysis summary", "Tables 2+3", "Table 4", "Figures 11+12",
		"Table 5", "Classifier coverage", "Inclusion delay",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing section %q", want)
		}
	}
}

func TestWriteAllProducesEveryFigure(t *testing.T) {
	a := smallAnalysis(t)
	dir := t.TempDir()
	if err := WriteAll(a, dir); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"fig03_payment_shares.csv", "fig04_pbs_share.csv", "fig05_relay_shares.csv",
		"fig06_hhi.csv", "fig07_builders_per_relay.csv", "fig08_builder_shares.csv",
		"fig09_block_value.csv", "fig10_proposer_profit.csv", "fig13_block_size.csv",
		"fig14_private_txs.csv", "fig15_mev_per_block.csv", "fig16_mev_value_share.csv",
		"fig17_censoring_share.csv", "fig18_sanctioned_share.csv", "fig19_profit_split.csv",
		"fig20_sandwiches.csv", "fig21_arbitrage.csv", "fig22_liquidations.csv",
		"tables.txt",
	}
	for _, f := range want {
		info, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Errorf("missing %s: %v", f, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}

func TestWriteAllBadDir(t *testing.T) {
	a := smallAnalysis(t)
	if err := WriteAll(a, "/proc/definitely/not/writable"); err == nil {
		t.Error("WriteAll into unwritable path succeeded")
	}
}
