// Package report renders a finished analysis as the paper's artifacts: a
// terminal digest and one CSV per figure plus text tables, ready for
// side-by-side comparison with the published plots.
//
// RenderAll produces every artifact concurrently on a bounded worker pool;
// results are collected in a fixed slice order and each artifact's bytes
// are a deterministic function of the analysis, so the output is identical
// however the pool schedules the work.
package report

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"sync"

	"github.com/ethpbs/pbslab/internal/core"
	"github.com/ethpbs/pbslab/internal/mev"
	"github.com/ethpbs/pbslab/internal/stats"
)

// PrintAll writes the full text report: summary, tables and coverage.
func PrintAll(w io.Writer, a *core.Analysis) {
	a.Summary(w)
	fmt.Fprintln(w)
	core.RenderTables2And3(w, a.Tables2And3Relays())
	fmt.Fprintln(w)
	rows, total := a.Table4RelayTrust()
	core.RenderTable4(w, rows, total)
	fmt.Fprintln(w)
	core.RenderBuilderBoxes(w, a.Figures11And12BuilderBoxes(11))
	fmt.Fprintln(w)
	core.RenderTable5(w, a.Clusters(), 17)
	fmt.Fprintln(w)
	core.RenderCoverage(w, a.ClassifierCoverage())

	gaps := a.OFACUpdateLag(4)
	if len(gaps) > 0 {
		fmt.Fprintln(w, "\n# OFAC update lag (Section 6)")
		for _, g := range gaps {
			fmt.Fprintf(w, "update %s: %.2f sanctioned compliant-relay blocks/day in window vs %.2f baseline\n",
				g.UpdateDate.Format("2006-01-02"), g.WindowPerDay, g.BaselinePerDay)
		}
	}

	delay := a.InclusionDelay()
	fmt.Fprintf(w, "\n# Inclusion delay (related-work extension)\n")
	fmt.Fprintf(w, "regular txs:    mean %.0fs median %.0fs (n=%d)\n",
		delay.Regular.Mean, delay.Regular.Median, delay.Regular.N)
	fmt.Fprintf(w, "sanctioned txs: mean %.0fs median %.0fs (n=%d) — %.2fx the regular wait\n",
		delay.Sanctioned.Mean, delay.Sanctioned.Median, delay.Sanctioned.N, delay.MeanRatio)
}

// Artifact is one rendered output file. A non-nil Err marks a renderer
// that panicked or was cancelled; its Data is empty and WriteAll skips it
// while still flushing every completed artifact.
type Artifact struct {
	Name string
	Data []byte
	Err  error
}

// step is one artifact job: a file name and a lazy render.
type step struct {
	file string
	fn   func(io.Writer)
}

// artifactSteps lists every output artifact. All closures are lazy — no
// figure is computed until a worker runs the step — so the pool, not the
// listing, decides concurrency.
func artifactSteps(a *core.Analysis) []step {
	split := func(title string, get func() core.ValueSplit) func(io.Writer) {
		return func(w io.Writer) {
			v := get()
			core.RenderMultiSeries(w, title, map[string]stats.Series{
				"pbs": v.PBS, "local": v.Local,
			}, 1)
		}
	}

	return []step{
		{"fig03_payment_shares.csv", func(w io.Writer) {
			ps := a.Figure3PaymentShares()
			core.RenderMultiSeries(w, "Figure 3: share of user payments", map[string]stats.Series{
				"base_fee": ps.BaseFee, "priority_fee": ps.Priority, "direct_transfers": ps.Direct,
			}, 1)
		}},
		{"fig04_pbs_share.csv", func(w io.Writer) {
			core.RenderSeries(w, "Figure 4: daily PBS share", a.Figure4PBSShare(), 1)
		}},
		{"fig05_relay_shares.csv", func(w io.Writer) {
			core.RenderMultiSeries(w, "Figure 5: daily relay shares", a.Figure5RelayShares(), 1)
		}},
		{"fig06_hhi.csv", func(w io.Writer) {
			h := a.Figure6HHI()
			core.RenderMultiSeries(w, "Figure 6: relay and builder HHI", map[string]stats.Series{
				"relays": h.Relays, "builders": h.Builders,
			}, 1)
		}},
		{"fig07_builders_per_relay.csv", func(w io.Writer) {
			core.RenderMultiSeries(w, "Figure 7: builders per relay", a.Figure7BuildersPerRelay(), 1)
		}},
		{"fig08_builder_shares.csv", func(w io.Writer) {
			core.RenderMultiSeries(w, "Figure 8: daily builder shares", a.Figure8BuilderShares(), 1)
		}},
		{"fig09_block_value.csv", split("Figure 9: mean daily block value [ETH]", func() core.ValueSplit { return a.Figure9BlockValue() })},
		{"fig10_proposer_profit.csv", func(w io.Writer) {
			p := a.Figure10ProposerProfit()
			core.RenderMultiSeries(w, "Figure 10: daily proposer profit [ETH]", map[string]stats.Series{
				"pbs_median": p.PBSMedian, "pbs_q1": p.PBSQ1, "pbs_q3": p.PBSQ3,
				"local_median": p.LocalMedian, "local_q1": p.LocalQ1, "local_q3": p.LocalQ3,
			}, 1)
		}},
		{"fig13_block_size.csv", func(w io.Writer) {
			s := a.Figure13BlockSize()
			fmt.Fprintf(w, "# target gas = %.0f\n", s.Target)
			core.RenderMultiSeries(w, "Figure 13: mean daily gas used", map[string]stats.Series{
				"pbs_mean": s.PBSMean, "pbs_std": s.PBSStd,
				"local_mean": s.LocalMean, "local_std": s.LocalStd,
			}, 1)
		}},
		{"fig14_private_txs.csv", split("Figure 14: daily private tx share", func() core.ValueSplit { return a.Figure14PrivateTxShare() })},
		{"fig15_mev_per_block.csv", split("Figure 15: mean MEV txs per block", func() core.ValueSplit { return a.Figure15MEVPerBlock() })},
		{"fig16_mev_value_share.csv", split("Figure 16: MEV share of block value", func() core.ValueSplit { return a.Figure16MEVValueShare() })},
		{"fig17_censoring_share.csv", func(w io.Writer) {
			core.RenderSeries(w, "Figure 17: share of PBS blocks via OFAC-compliant relays",
				a.Figure17CensoringShare(), 1)
		}},
		{"fig18_sanctioned_share.csv", split("Figure 18: share of blocks with sanctioned txs", func() core.ValueSplit { return a.Figure18SanctionedShare() })},
		{"fig19_profit_split.csv", func(w io.Writer) {
			p := a.Figure19ProfitSplit()
			core.RenderMultiSeries(w, "Figure 19: builder/proposer profit split", map[string]stats.Series{
				"builder": p.BuilderShare, "proposer": p.ProposerShare,
			}, 1)
		}},
		{"fig20_sandwiches.csv", split("Figure 20: sandwiches per block", func() core.ValueSplit { return a.Figure20To22MEVKind(mev.KindSandwich) })},
		{"fig21_arbitrage.csv", split("Figure 21: cyclic arbitrage per block", func() core.ValueSplit { return a.Figure20To22MEVKind(mev.KindArbitrage) })},
		{"fig22_liquidations.csv", split("Figure 22: liquidations per block", func() core.ValueSplit { return a.Figure20To22MEVKind(mev.KindLiquidation) })},
		{"tables.txt", func(w io.Writer) { PrintAll(w, a) }},
	}
}

// RenderAll renders every artifact into memory using at most workers
// concurrent renderers. The returned slice is always in the fixed artifact
// order regardless of scheduling; Analysis methods are memoized and safe
// for concurrent use, so overlapping jobs share rather than repeat work.
func RenderAll(a *core.Analysis, workers int) []Artifact {
	return RenderAllContext(context.Background(), a, workers)
}

// RenderAllContext is RenderAll with cancellation and panic isolation: a
// renderer that panics poisons only its own artifact (Err carries the panic
// and stack), and once ctx is cancelled the remaining un-rendered artifacts
// are marked with ctx's error instead of being computed. Completed
// artifacts are always returned, so callers can flush partial output.
func RenderAllContext(ctx context.Context, a *core.Analysis, workers int) []Artifact {
	return renderSteps(ctx, artifactSteps(a), workers)
}

// renderSteps runs the artifact pool; split out so tests can exercise panic
// isolation and cancellation with synthetic steps.
func renderSteps(ctx context.Context, steps []step, workers int) []Artifact {
	if workers < 1 {
		workers = 1
	}
	if workers > len(steps) {
		workers = len(steps)
	}
	out := make([]Artifact, len(steps))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					out[i] = Artifact{Name: steps[i].file, Err: err}
					continue
				}
				data, err := renderOne(steps[i])
				out[i] = Artifact{Name: steps[i].file, Data: data, Err: err}
			}
		}()
	}
	for i := range steps {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// renderOne runs a single render step, converting a panic into an error
// that names the artifact and keeps the worker (and the process) alive.
func renderOne(s step) (data []byte, err error) {
	var buf bytes.Buffer
	defer func() {
		if r := recover(); r != nil {
			data = nil
			err = fmt.Errorf("report: render %s: panic: %v\n%s", s.file, r, debug.Stack())
		}
	}()
	s.fn(&buf)
	return buf.Bytes(), nil
}

// WriteAll renders all artifacts (concurrently, see RenderAll) and writes
// them into dir, one file per figure plus the text tables and a manifest.
// Every file lands atomically (temp + rename), so a crash mid-write never
// leaves a half-written artifact under its final name.
func WriteAll(a *core.Analysis, dir string) error {
	return WriteAllContext(context.Background(), a, dir)
}

// WriteAllContext is WriteAll under a context: on cancellation (or a
// renderer failure) every artifact that did complete is still flushed to
// disk and covered by the manifest, then the error is reported. A partial
// directory therefore always verifies clean against its manifest — it is
// merely incomplete, never corrupt.
func WriteAllContext(ctx context.Context, a *core.Analysis, dir string) error {
	return WriteAllExtraContext(ctx, a, dir)
}

// WriteAllExtraContext is WriteAllContext with additional caller-supplied
// artifacts (e.g. the serialized dataset a serving daemon reloads from)
// landed in the same directory and covered by the same manifest, so
// VerifyDir certifies them exactly like the rendered figures.
func WriteAllExtraContext(ctx context.Context, a *core.Analysis, dir string, extra ...Artifact) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	arts := RenderAllContext(ctx, a, a.Workers())
	arts = append(arts, extra...)
	var errs []error
	var done []Artifact
	for _, art := range arts {
		if art.Err != nil {
			errs = append(errs, fmt.Errorf("report: %s: %w", art.Name, art.Err))
			continue
		}
		done = append(done, art)
	}
	if err := writeArtifacts(dir, done); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// WriteArtifacts lands caller-assembled artifacts in dir under a covering
// manifest, exactly like the rendered figure set: every file atomic, the
// manifest last, the directory verifiable with VerifyDir. The fleet merge
// uses it to publish the cross-scenario comparison corpus.
func WriteArtifacts(dir string, arts []Artifact) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, art := range arts {
		if art.Err != nil {
			return fmt.Errorf("report: %s: %w", art.Name, art.Err)
		}
	}
	return writeArtifacts(dir, arts)
}
